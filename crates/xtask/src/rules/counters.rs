//! **L8 `unguarded-counter`** — cache-accounting discipline.
//!
//! The engine's counters ([`EngineCounters`]-style structs) and the
//! serving layer's [`ServeCounters`] are only meaningful through their
//! aggregation paths: workers merge deltas via `merge`, readers take a
//! whole-struct `snapshot()`. Two shapes break that discipline:
//!
//! 1. A **`pub` atomic field**: any caller can `fetch_add` accounting
//!    state directly, bypassing the documented invariants (monotonicity,
//!    counters-move-together) that `# Invariants` sections promise.
//! 2. A **torn multi-counter getter**: a `pub fn` that loads two or more
//!    atomics piecewise can observe a state no serial execution produces
//!    (e.g. `hits` already bumped but `lookups` not yet), so derived
//!    ratios leave `[0, 1]`. Reads of more than one counter must go
//!    through a `snapshot()`/`merge()`-style aggregator, which this rule
//!    recognizes by name or by body.

use super::{bounded_matches, is_ident_byte, Finding, Lint};
use crate::scopes::{analyze_fns, receiver_name};
use crate::source::SourceFile;

pub(crate) fn lint_unguarded_counter(src: &SourceFile, out: &mut Vec<Finding>) {
    lint_pub_atomic_fields(src, out);
    lint_torn_getters(src, out);
    out.sort_by_key(|f| f.line);
    out.dedup();
}

/// Shape 1: `pub <name>: Atomic...` field declarations.
fn lint_pub_atomic_fields(src: &SourceFile, out: &mut Vec<Finding>) {
    let code = &src.code;
    for at in bounded_matches(code, "pub") {
        // `pub`, `pub(crate)`, `pub(super)` all expose the field beyond the
        // owning impl; skip `pub fn`/`pub struct`/... by requiring the next
        // token to be `name: Atomic`.
        let mut rest = code[at + 3..].trim_start();
        if let Some(stripped) = rest.strip_prefix('(') {
            let Some(close) = stripped.find(')') else { continue };
            rest = stripped[close + 1..].trim_start();
        }
        let name: String = rest.bytes().take_while(|&b| is_ident_byte(b)).map(char::from).collect();
        if name.is_empty() || matches!(name.as_str(), "fn" | "struct" | "enum" | "mod" | "use" | "const" | "static" | "type" | "trait") {
            continue;
        }
        let after = rest[name.len()..].trim_start();
        let Some(ty) = after.strip_prefix(':') else { continue };
        if !ty.trim_start().starts_with("Atomic") {
            continue;
        }
        let line = src.line_of(at);
        if src.is_test_line(line) || src.is_allowed(line, Lint::UnguardedCounter.name()) {
            continue;
        }
        out.push(Finding {
            lint: Lint::UnguardedCounter,
            file: src.path.clone(),
            line,
            message: format!(
                "accounting field `{name}` is a pub atomic; make it private and expose \
                 it through the snapshot()/merge() aggregation path"
            ),
        });
    }
}

/// Shape 2: `pub fn`s loading two or more distinct atomics piecewise.
fn lint_torn_getters(src: &SourceFile, out: &mut Vec<Finding>) {
    let code = &src.code;
    for scope in analyze_fns(src) {
        if scope.name == "snapshot" {
            continue;
        }
        // Only pub fns: check the tokens immediately before the `fn`.
        let fn_line_text = src.code_line(scope.line);
        if !fn_line_text.trim_start().starts_with("pub") {
            continue;
        }
        let (open, close) = scope.body;
        let body = &code[open..=close.min(code.len() - 1)];
        if body.contains(".snapshot(") || body.contains(".merge(") {
            continue; // already goes through an aggregator
        }
        let mut loaded: Vec<String> = Vec::new();
        for (at, _) in body.match_indices(".load(") {
            let name = receiver_name(body, at);
            if !name.is_empty() && !loaded.contains(&name) {
                loaded.push(name);
            }
        }
        if loaded.len() < 2 {
            continue;
        }
        if src.is_test_line(scope.line)
            || src.is_allowed(scope.line, Lint::UnguardedCounter.name())
        {
            continue;
        }
        out.push(Finding {
            lint: Lint::UnguardedCounter,
            file: src.path.clone(),
            line: scope.line,
            message: format!(
                "`pub fn {}` reads counters {} with separate loads — a torn snapshot; \
                 aggregate through a snapshot()/merge() method",
                scope.name,
                loaded.iter().map(|n| format!("`{n}`")).collect::<Vec<_>>().join(", ")
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::{lint_source, Lint, Scope};
    use crate::source::SourceFile;

    fn scope() -> Scope {
        Scope { counters: true, ..Default::default() }
    }

    #[test]
    fn pub_atomic_field_is_flagged() {
        let src = "pub struct C {\n    pub hits: AtomicU64,\n    misses: AtomicU64,\n}\n";
        let f = lint_source(&SourceFile::parse("t.rs", src), scope());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, Lint::UnguardedCounter);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn private_fields_with_snapshot_are_clean() {
        let src = "pub struct C { hits: AtomicU64, misses: AtomicU64 }\nimpl C {\n    pub fn snapshot(&self) -> (u64, u64) {\n        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))\n    }\n}\n";
        let f = lint_source(&SourceFile::parse("t.rs", src), scope());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn torn_multi_counter_getter_is_flagged() {
        let src = "pub struct C { hits: AtomicU64, lookups: AtomicU64 }\nimpl C {\n    pub fn rate(&self) -> f64 {\n        self.hits.load(Ordering::Relaxed) as f64 / self.lookups.load(Ordering::Relaxed) as f64\n    }\n}\n";
        let f = lint_source(&SourceFile::parse("t.rs", src), scope());
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("torn snapshot"));
    }

    #[test]
    fn single_counter_getter_is_clean() {
        let src = "pub struct C { hits: AtomicU64 }\nimpl C {\n    pub fn hits(&self) -> u64 { self.hits.load(Ordering::Relaxed) }\n}\n";
        let f = lint_source(&SourceFile::parse("t.rs", src), scope());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn getter_delegating_to_snapshot_is_clean() {
        let src = "impl C {\n    pub fn stats(&self) -> Stats { self.counters.snapshot() }\n}\n";
        let f = lint_source(&SourceFile::parse("t.rs", src), scope());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn private_multi_load_fn_is_not_flagged() {
        let src = "impl C {\n    fn internal(&self) -> u64 { self.a.load(O) + self.b.load(O) }\n}\n";
        let f = lint_source(&SourceFile::parse("t.rs", src), scope());
        assert!(f.is_empty(), "{f:?}");
    }
}
