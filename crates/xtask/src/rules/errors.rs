//! **L12 `error-coverage`** — every `TgError` variant must be both
//! constructed and matched somewhere in the workspace.
//!
//! A variant nobody constructs is dead API surface; a variant nobody
//! matches is an error the serve layer can only stringify, never handle
//! (retry on `Overloaded`, rebuild on `SnapshotCorrupt`, …). The rule is
//! whole-workspace: occurrences in tests count — a test that asserts
//! `matches!(err, TgError::ShapeMismatch { .. })` *is* the evidence the
//! variant's shape is load-bearing.
//!
//! Occurrence classification is lexical:
//!
//! * An occurrence followed (past its payload and any closing parens) by
//!   `=>` or `|` is a **match**; so is one preceded in the same statement
//!   by `matches!`, `if let`, or `while let`.
//! * Anything else is a **construction**.
//! * Inside the defining crate, `impl From<…> for TgError` bodies count
//!   as constructions (they are what `?` conversions expand to), inherent
//!   `impl TgError` builder fns transfer construction credit to their
//!   call sites (`TgError::parse(…)` constructs `Parse`), and
//!   `Display`/`Debug`/`Error` impl bodies count as neither — formatting
//!   boilerplate would otherwise mark every variant matched.
//!
//! Escape hatch: `// lint: allow(error-coverage, <reason>)` on the
//! variant's declaration line.

use super::{bounded_matches, is_ident_byte, Finding, Lint};
use crate::callgraph::extract_impl_blocks;
use crate::scopes::analyze_fns;
use crate::source::SourceFile;
use std::collections::BTreeMap;

const ENUM_NAME: &str = "TgError";

/// Formatting traits whose `TgError` impls are classification-neutral.
const NEUTRAL_TRAITS: &[&str] = &["Display", "Debug", "Error"];

pub fn lint_error_coverage(sources: &[&SourceFile]) -> Vec<Finding> {
    let Some((def_idx, variants)) = find_variants(sources) else {
        return Vec::new(); // no TgError definition in scope (fixture mode)
    };
    let def = sources[def_idx];
    let impls = extract_impl_blocks(def);
    // Spans inside the defining file that get special treatment.
    let mut neutral_spans: Vec<(usize, usize)> = Vec::new();
    let mut from_spans: Vec<(usize, usize)> = Vec::new();
    let mut builder_spans: Vec<(usize, usize)> = Vec::new();
    for b in &impls {
        if b.self_type != ENUM_NAME {
            continue;
        }
        match b.trait_name.as_deref() {
            Some(t) if NEUTRAL_TRAITS.contains(&t) => neutral_spans.push(b.body),
            Some("From") => from_spans.push(b.body),
            None => builder_spans.push(b.body),
            Some(_) => {}
        }
    }
    // Builder fns: inherent-impl fn name → variants its body constructs.
    let mut builders: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for scope in analyze_fns(def) {
        if !builder_spans.iter().any(|s| scope.body.0 > s.0 && scope.body.1 < s.1) {
            continue;
        }
        let body = &def.code[scope.body.0..=scope.body.1];
        for v in &variants {
            if bounded_matches(body, &format!("{ENUM_NAME}::{}", v.name)).next().is_some() {
                builders.entry(scope.name.clone()).or_default().push(v.name.clone());
            }
        }
    }

    let mut constructed: BTreeMap<&str, bool> = BTreeMap::new();
    let mut matched: BTreeMap<&str, bool> = BTreeMap::new();
    for v in &variants {
        constructed.insert(&v.name, false);
        matched.insert(&v.name, false);
    }
    for (i, src) in sources.iter().enumerate() {
        let prefix = format!("{ENUM_NAME}::");
        for at in bounded_matches(&src.code, &prefix) {
            let after = at + prefix.len();
            let name: String = src.code[after..]
                .bytes()
                .take_while(|&b| is_ident_byte(b))
                .map(char::from)
                .collect();
            if i == def_idx && neutral_spans.iter().any(|s| at > s.0 && at < s.1) {
                continue;
            }
            if let Some(vs) = builders.get(&name) {
                // `TgError::parse(…)` call site (or the builder's own
                // body, which is harmless double credit).
                for v in vs {
                    if let Some(c) = constructed.get_mut(v.as_str()) {
                        *c = true;
                    }
                }
                continue;
            }
            if !variants.iter().any(|v| v.name == name) {
                continue;
            }
            let force_construct = i == def_idx
                && (from_spans.iter().any(|s| at > s.0 && at < s.1)
                    || builder_spans.iter().any(|s| at > s.0 && at < s.1));
            let is_match = !force_construct && occurrence_is_match(&src.code, at, after, &name);
            let slot = if is_match { &mut matched } else { &mut constructed };
            if let Some(flag) = slot.get_mut(name.as_str()) {
                *flag = true;
            }
        }
    }

    let mut out = Vec::new();
    for v in &variants {
        if def.is_allowed(v.line, Lint::ErrorCoverage.name()) {
            continue;
        }
        if !constructed[v.name.as_str()] {
            out.push(Finding {
                lint: Lint::ErrorCoverage,
                file: def.path.clone(),
                line: v.line,
                message: format!(
                    "`{ENUM_NAME}::{}` is never constructed anywhere in the \
                     workspace — dead error surface",
                    v.name
                ),
            });
        }
        if !matched[v.name.as_str()] {
            out.push(Finding {
                lint: Lint::ErrorCoverage,
                file: def.path.clone(),
                line: v.line,
                message: format!(
                    "`{ENUM_NAME}::{}` is never matched anywhere in the \
                     workspace — callers can only stringify it, never handle it",
                    v.name
                ),
            });
        }
    }
    out.sort_by(|a, b| (a.line, a.message.clone()).cmp(&(b.line, b.message.clone())));
    out
}

struct Variant {
    name: String,
    line: usize,
}

/// Locates `enum TgError` and its variant names/lines.
fn find_variants(sources: &[&SourceFile]) -> Option<(usize, Vec<Variant>)> {
    for (i, src) in sources.iter().enumerate() {
        let Some(at) = bounded_matches(&src.code, "enum ").find(|&at| {
            src.code[at + 5..].trim_start().starts_with(ENUM_NAME)
                && !src
                    .code[at + 5..]
                    .trim_start()
                    .as_bytes()
                    .get(ENUM_NAME.len())
                    .is_some_and(|&b| is_ident_byte(b))
        }) else {
            continue;
        };
        let bytes = src.code.as_bytes();
        let open = at + src.code[at..].find('{')?;
        let mut depth = 0usize;
        let mut close = open;
        for (j, &b) in bytes[open..].iter().enumerate() {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        close = open + j;
                        break;
                    }
                }
                _ => {}
            }
        }
        let mut variants = Vec::new();
        let mut j = open + 1;
        let mut nest = 0i32; // (), {}, <> nesting inside payloads
        while j < close {
            match bytes[j] {
                b'(' | b'{' | b'<' => nest += 1,
                b')' | b'}' | b'>' if bytes[j.saturating_sub(1)] != b'-' => nest -= 1,
                b'A'..=b'Z' if nest <= 0 && !is_ident_byte(bytes[j - 1]) => {
                    let start = j;
                    while j < close && is_ident_byte(bytes[j]) {
                        j += 1;
                    }
                    variants.push(Variant {
                        name: src.code[start..j].to_string(),
                        line: src.line_of(start),
                    });
                    continue;
                }
                _ => {}
            }
            j += 1;
        }
        return Some((i, variants));
    }
    None
}

/// Is the occurrence at `at` (name ending at `after + name.len()`) a
/// match-position use? Forward evidence (`=>` / `|` past the payload)
/// first, then backward evidence (`matches!` / `if let` / `while let`
/// earlier in the statement).
fn occurrence_is_match(code: &str, at: usize, after: usize, name: &str) -> bool {
    let bytes = code.as_bytes();
    let mut j = after + name.len();
    // Skip one balanced payload group, if present.
    while j < bytes.len() && bytes[j].is_ascii_whitespace() {
        j += 1;
    }
    if j < bytes.len() && (bytes[j] == b'(' || bytes[j] == b'{') {
        let (openb, closeb) = if bytes[j] == b'(' { (b'(', b')') } else { (b'{', b'}') };
        let mut depth = 0usize;
        while j < bytes.len() {
            if bytes[j] == openb {
                depth += 1;
            } else if bytes[j] == closeb {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    // Skip whitespace and closing parens (e.g. the `)` ending `matches!`).
    while j < bytes.len() && (bytes[j].is_ascii_whitespace() || bytes[j] == b')') {
        j += 1;
    }
    if code[j..].starts_with("=>") || code[j..].starts_with('|') {
        return true;
    }
    // Backward: statement window up to the occurrence.
    let stmt = code[..at]
        .rfind(|c| c == ';' || c == '{' || c == '}')
        .map_or(0, |p| p + 1);
    let window = &code[stmt..at];
    window.contains("matches!") || window.contains("if let") || window.contains("while let")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let parsed: Vec<SourceFile> =
            files.iter().map(|(p, s)| SourceFile::parse(*p, *s)).collect();
        let refs: Vec<&SourceFile> = parsed.iter().collect();
        lint_error_coverage(&refs)
    }

    const DEF: &str = "pub enum TgError {\n    Io(std::io::Error),\n    Overloaded { capacity: usize },\n}\n\
        impl std::fmt::Display for TgError {\n    fn fmt(&self) { match self { TgError::Io(_) => {}, TgError::Overloaded { .. } => {} } }\n}\n\
        impl From<std::io::Error> for TgError {\n    fn from(e: std::io::Error) -> Self { TgError::Io(e) }\n}\n";

    #[test]
    fn display_impl_does_not_count_as_matching() {
        let user = "fn f() -> Result<(), TgError> { Err(TgError::Overloaded { capacity: 1 }) }\n\
            fn g(e: &TgError) -> bool { matches!(e, TgError::Io(_)) }\n\
            fn h(e: &TgError) -> bool { matches!(e, TgError::Overloaded { .. }) }\n";
        assert!(run(&[("err.rs", DEF), ("user.rs", user)]).is_empty());
    }

    #[test]
    fn unmatched_variant_is_flagged() {
        let user = "fn f() -> Result<(), TgError> { Err(TgError::Overloaded { capacity: 1 }) }\n\
            fn g(e: &TgError) -> bool { matches!(e, TgError::Io(_)) }\n";
        let f = run(&[("err.rs", DEF), ("user.rs", user)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("Overloaded"));
        assert!(f[0].message.contains("never matched"));
    }

    #[test]
    fn unconstructed_variant_is_flagged_even_when_matched() {
        let user = "fn g(e: &TgError) -> bool { matches!(e, TgError::Io(_)) }\n\
            fn h(e: &TgError) -> bool { matches!(e, TgError::Overloaded { .. }) }\n";
        let f = run(&[("err.rs", DEF), ("user.rs", user)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("Overloaded"));
        assert!(f[0].message.contains("never constructed"));
    }

    #[test]
    fn from_impl_counts_as_construction() {
        // `Io` is only ever built through the `From` impl (i.e. by `?`),
        // yet it must count as constructed.
        let user = "fn g(e: &TgError) -> bool { matches!(e, TgError::Io(_)) }\n\
            fn f() -> Result<(), TgError> { Err(TgError::Overloaded { capacity: 1 }) }\n\
            fn h(e: &TgError) -> bool { matches!(e, TgError::Overloaded { .. }) }\n";
        assert!(run(&[("err.rs", DEF), ("user.rs", user)]).is_empty());
    }

    #[test]
    fn builder_call_site_counts_as_construction() {
        let def = "pub enum TgError {\n    Parse { message: String },\n}\n\
            impl TgError {\n    pub fn parse(m: &str) -> Self { TgError::Parse { message: m.into() } }\n}\n";
        let user = "fn f() -> Result<(), TgError> { Err(TgError::parse(\"bad\")) }\n\
            fn g(e: &TgError) -> bool { matches!(e, TgError::Parse { .. }) }\n";
        assert!(run(&[("err.rs", def), ("user.rs", user)]).is_empty());
    }

    #[test]
    fn match_arm_and_or_pattern_count_as_matching() {
        let user = "fn f(e: TgError) -> u8 {\n    match e {\n        TgError::Io(_) | TgError::Overloaded { .. } => 1,\n    }\n}\n\
            fn mk() -> TgError { TgError::Overloaded { capacity: 2 } }\n";
        assert!(run(&[("err.rs", DEF), ("user.rs", user)]).is_empty());
    }

    #[test]
    fn allow_on_declaration_line_suppresses() {
        let def = "pub enum TgError {\n    Spare, // lint: allow(error-coverage, reserved for the v2 wire format)\n}\n";
        assert!(run(&[("err.rs", def)]).is_empty());
    }
}
