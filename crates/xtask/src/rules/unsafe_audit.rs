//! L15 `unsafe-audit`: every `unsafe` block, fn, trait, or impl outside
//! `vendor/` must carry a `// safety: <reason>` justification — on the
//! `unsafe` line itself, or alone on the line above — documenting the
//! invariant that makes the code sound.
//!
//! The workspace is currently `unsafe`-free (the inference and serving
//! stack is deliberately safe, std-only Rust; see DESIGN.md), so this rule
//! is a tripwire: the *first* `unsafe` anyone introduces arrives with its
//! soundness argument attached, reviewable in the same diff. Test code is
//! exempt (`#[cfg(test)]` items), as are vendored files, and
//! `// lint: allow(unsafe-audit, <reason>)` remains the generic escape
//! hatch.

use crate::rules::{bounded_matches, is_ident_byte, Finding, Lint};
use crate::source::SourceFile;

pub fn lint_unsafe_audit(src: &SourceFile, out: &mut Vec<Finding>) {
    if src.path.contains("vendor/") {
        return;
    }
    let bytes = src.code.as_bytes();
    for at in bounded_matches(&src.code, "unsafe") {
        let end = at + "unsafe".len();
        if end < bytes.len() && is_ident_byte(bytes[end]) {
            continue; // identifier that merely starts with "unsafe"
        }
        let rest = src.code[end..].trim_start();
        // Classify the construct; `unsafe` in other positions (e.g. inside
        // an `extern` signature) rides on the enclosing item's audit.
        let what = if rest.starts_with("fn ") || rest.starts_with("fn(") {
            "unsafe fn"
        } else if rest.starts_with("impl ") || rest.starts_with("impl<") {
            "unsafe impl"
        } else if rest.starts_with("trait ") {
            "unsafe trait"
        } else if rest.starts_with('{') {
            "unsafe block"
        } else {
            continue;
        };
        let line = src.line_of(at);
        if src.is_test_line(line) || src.is_allowed(line, Lint::UnsafeAudit.name()) {
            continue;
        }
        let justified = src.has_safety_ok(line)
            || (line >= 2
                && src.has_safety_ok(line - 1)
                && src.code_line(line - 1).trim().is_empty());
        if justified {
            continue;
        }
        out.push(Finding {
            lint: Lint::UnsafeAudit,
            file: src.path.clone(),
            line,
            message: format!(
                "`{what}` without a `// safety: <reason>` justification; document the \
                 invariant that makes it sound (or move it under `vendor/`)"
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, text: &str) -> Vec<Finding> {
        let src = SourceFile::parse(path, text);
        let mut out = Vec::new();
        lint_unsafe_audit(&src, &mut out);
        out
    }

    #[test]
    fn unannotated_unsafe_constructs_fire() {
        let text = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n\
                    unsafe fn raw() {}\n\
                    unsafe impl Send for W {}\n\
                    unsafe trait Zeroable {}\n";
        let found = run("a.rs", text);
        assert_eq!(found.len(), 4, "{found:?}");
        assert!(found[0].message.contains("`unsafe block`"));
        assert!(found[1].message.contains("`unsafe fn`"));
        assert!(found[2].message.contains("`unsafe impl`"));
        assert!(found[3].message.contains("`unsafe trait`"));
    }

    #[test]
    fn safety_comment_on_line_or_above_justifies() {
        let text = "fn f(p: *const u8) -> u8 {\n    \
                    unsafe { *p } // safety: caller guarantees p is valid\n}\n\
                    // safety: W owns no thread-affine state\n\
                    unsafe impl Send for W {}\n";
        assert!(run("a.rs", text).is_empty());
    }

    #[test]
    fn safety_comment_requires_a_reason() {
        // parse_reasoned drops bare `// safety:` annotations, so the
        // finding still fires.
        let text = "fn f(p: *const u8) -> u8 {\n    unsafe { *p } // safety:\n}\n";
        assert_eq!(run("a.rs", text).len(), 1);
    }

    #[test]
    fn vendor_tests_and_identifiers_are_exempt() {
        assert!(run("vendor/x/src/lib.rs", "unsafe fn raw() {}\n").is_empty());
        let text = "#[cfg(test)]\nmod tests {\n    fn t(p: *const u8) { unsafe { let _ = *p; } }\n}\n";
        assert!(run("a.rs", text).is_empty());
        assert!(run("a.rs", "fn f() { let unsafe_count = 1; g(unsafe_count); }\n").is_empty());
    }
}
