//! **L5 `lock-order`** and **L7 `lock-across`** — the two rules built on
//! the [`crate::scopes`] guard-liveness walker.
//!
//! L5 builds a lock-acquisition graph: an edge `a -> b` means some
//! function acquires lock `b` while a guard on lock `a` is live. The
//! graph must be acyclic (a cycle is a latent deadlock: two threads can
//! enter the cycle from different edges) and must not contradict the
//! canonical order declared in `concurrency.toml` (`order = [...]`,
//! outermost first). Edges are extracted per file but *checked per
//! crate* by the workspace walker, because the two halves of a cycle
//! usually live in different files.
//!
//! L7 flags any expensive or blocking call (see
//! [`crate::scopes::EXPENSIVE_CALLS`]) executed while a guard is live:
//! holding a lock across `embed_batch`, a matmul, channel `recv`, or
//! file I/O serializes the hot path (and a blocking call under a lock is
//! one wait-cycle away from deadlock). Deliberate exceptions carry
//! `// lint: allow(lock-across, <invariant>)` on the call line.

use super::{Finding, Lint};
use crate::manifest::ConcurrencyManifest;
use crate::scopes::{analyze_fns, Event};
use crate::source::SourceFile;

/// One observed "acquired `to` while holding `from`" fact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LockEdge {
    /// Lock already held.
    pub from: String,
    /// Lock being acquired.
    pub to: String,
    /// File the acquisition happens in.
    pub file: String,
    /// 1-based acquisition line.
    pub line: usize,
    /// Line of the `from` guard's acquisition (for diagnostics).
    pub from_line: usize,
}

/// Extracts every lock-acquisition edge from one file. An acquisition
/// carrying `// lint: allow(lock-order, ...)` on its line contributes no
/// edges (the annotation vouches for that site, e.g. an ordered
/// two-shard lock).
pub fn extract_lock_edges(src: &SourceFile) -> Vec<LockEdge> {
    let mut edges = Vec::new();
    for scope in analyze_fns(src) {
        for event in &scope.events {
            let Event::Acquire { lock, line, held } = event else { continue };
            if src.is_test_line(*line) || src.is_allowed(*line, Lint::LockOrder.name()) {
                continue;
            }
            for (from, from_line) in held {
                let edge = LockEdge {
                    from: from.clone(),
                    to: lock.clone(),
                    file: src.path.clone(),
                    line: *line,
                    from_line: *from_line,
                };
                if !edges.contains(&edge) {
                    edges.push(edge);
                }
            }
        }
    }
    edges
}

/// Checks an acquisition graph (one file's or one crate's worth of edges)
/// for self-edges, cycles, and contradictions of the declared canonical
/// order.
pub fn check_lock_graph(edges: &[LockEdge], manifest: &ConcurrencyManifest) -> Vec<Finding> {
    let mut out = Vec::new();
    for edge in edges {
        if edge.from == edge.to {
            out.push(finding(
                edge,
                format!(
                    "two guards of lock `{}` are held at once (second taken at line {}); \
                     a concurrent holder acquiring in the opposite order deadlocks",
                    edge.from, edge.line
                ),
            ));
            continue;
        }
        if let (Some(fi), Some(ti)) =
            (manifest.order_index(&edge.from), manifest.order_index(&edge.to))
        {
            if fi > ti {
                out.push(finding(
                    edge,
                    format!(
                        "acquiring `{}` while holding `{}` contradicts the canonical \
                         lock order in concurrency.toml (`{}` must be taken first)",
                        edge.to, edge.from, edge.to
                    ),
                ));
            }
        }
        if on_cycle(edge, edges) {
            out.push(finding(
                edge,
                format!(
                    "lock-order cycle: `{}` is acquired while `{}` is held here, but \
                     another site acquires them in the opposite order — declare one \
                     order in concurrency.toml and fix the violator",
                    edge.to, edge.from
                ),
            ));
        }
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out.dedup();
    out
}

fn finding(edge: &LockEdge, message: String) -> Finding {
    Finding { lint: Lint::LockOrder, file: edge.file.clone(), line: edge.line, message }
}

/// True if following edges from `edge.to` can reach `edge.from` (i.e. the
/// edge closes a cycle).
fn on_cycle(edge: &LockEdge, edges: &[LockEdge]) -> bool {
    let mut stack = vec![edge.to.as_str()];
    let mut seen: Vec<&str> = Vec::new();
    while let Some(node) = stack.pop() {
        if node == edge.from {
            return true;
        }
        if seen.contains(&node) {
            continue;
        }
        seen.push(node);
        for e in edges {
            if e.from == node && e.from != e.to {
                stack.push(e.to.as_str());
            }
        }
    }
    false
}

/// L7: expensive/blocking calls under a live guard.
pub(crate) fn lint_lock_across(src: &SourceFile, out: &mut Vec<Finding>) {
    for scope in analyze_fns(src) {
        for event in &scope.events {
            let Event::Expensive { call, line, held } = event else { continue };
            // The annotation may sit on the call's line or on its own line
            // directly above (lock-across call lines are often full).
            if src.is_test_line(*line)
                || src.is_allowed(*line, Lint::LockAcross.name())
                || src.is_allowed(line.saturating_sub(1), Lint::LockAcross.name())
            {
                continue;
            }
            let held_desc: Vec<String> =
                held.iter().map(|(l, ln)| format!("`{l}` (line {ln})")).collect();
            out.push(Finding {
                lint: Lint::LockAcross,
                file: src.path.clone(),
                line: *line,
                message: format!(
                    "`{call}` runs while lock guard(s) on {} are held; drop the guard \
                     first or annotate `// lint: allow(lock-across, <invariant>)`",
                    held_desc.join(", ")
                ),
            });
        }
    }
    out.sort_by_key(|f| f.line);
    out.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{lint_source, lint_source_with, Scope};

    fn scope_l5() -> Scope {
        Scope { lock_order: true, ..Default::default() }
    }

    fn scope_l7() -> Scope {
        Scope { lock_across: true, ..Default::default() }
    }

    #[test]
    fn consistent_order_produces_no_findings() {
        let src = "\
fn a(&self) {\n    let f = self.fifo.lock();\n    let s = self.shards[0].write();\n}\n\
fn b(&self) {\n    let f = self.fifo.lock();\n    let s = self.shards[1].read();\n}\n";
        let f = lint_source(&SourceFile::parse("t.rs", src), scope_l5());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn cycle_across_two_fns_is_flagged_at_both_edges() {
        let src = "\
fn a(&self) {\n    let f = self.fifo.lock();\n    let s = self.state.lock();\n}\n\
fn b(&self) {\n    let s = self.state.lock();\n    let f = self.fifo.lock();\n}\n";
        let f = lint_source(&SourceFile::parse("t.rs", src), scope_l5());
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.lint == Lint::LockOrder));
        assert!(f.iter().all(|x| x.message.contains("cycle")));
    }

    #[test]
    fn declared_order_contradiction_is_flagged() {
        let manifest = crate::manifest::parse("[lock-order]\norder = [\"fifo\", \"shards\"]\n").unwrap();
        let src = "fn a(&self) {\n    let s = self.shards[0].write();\n    let f = self.fifo.lock();\n}\n";
        let f = lint_source_with(&SourceFile::parse("t.rs", src), scope_l5(), &manifest);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("canonical lock order"));
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn same_lock_twice_is_a_self_edge_finding() {
        let src = "fn a(&self) {\n    let s1 = self.shards[0].write();\n    let s2 = self.shards[1].write();\n}\n";
        let f = lint_source(&SourceFile::parse("t.rs", src), scope_l5());
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("two guards of lock `shards`"));
    }

    #[test]
    fn allow_lock_order_suppresses_the_edge() {
        let src = "\
fn a(&self) {\n    let s1 = self.shards[0].write();\n    let s2 = self.shards[1].write(); // lint: allow(lock-order, index-ordered: 0 < 1)\n}\n";
        let f = lint_source(&SourceFile::parse("t.rs", src), scope_l5());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn recv_under_guard_is_a_lock_across_finding() {
        let src = "fn w(rx: &Mutex<Receiver<u8>>) {\n    let wave = match relock(rx.lock()).recv() { Ok(w) => w, Err(_) => return };\n}\n";
        let f = lint_source(&SourceFile::parse("t.rs", src), scope_l7());
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains(".recv"));
    }

    #[test]
    fn guard_dropped_before_expensive_call_is_clean() {
        let src = "\
fn w(&self) {\n    let g = self.cache.lock();\n    let plan = g.plan();\n    drop(g);\n    engine.embed_batch(&plan.ns, &plan.ts);\n}\n";
        let f = lint_source(&SourceFile::parse("t.rs", src), scope_l7());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_lock_across_suppresses_on_the_call_line() {
        let src = "\
fn w(&self) {\n    let g = self.q.lock();\n    let x = g.rx.recv(); // lint: allow(lock-across, single consumer by design)\n}\n";
        let f = lint_source(&SourceFile::parse("t.rs", src), scope_l7());
        assert!(f.is_empty(), "{f:?}");
    }
}
