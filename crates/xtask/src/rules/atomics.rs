//! **L6 `atomics`** — the atomics audit.
//!
//! Two failure shapes, both invisible to `cargo test` on x86 (which gives
//! acquire/release for free) and both real on weaker architectures:
//!
//! 1. **Relaxed control signals.** `Ordering::Relaxed` guarantees
//!    atomicity but no ordering: a thread observing `closed == true` may
//!    not observe writes that happened before the flag flip. That is fine
//!    for statistics counters, but a flag another thread reads *to decide
//!    behavior* (shutdown, degraded mode) wants `Acquire`/`Release` — or
//!    an explicit `// relaxed-ok: <invariant>` stating why Relaxed is
//!    sufficient (e.g. the flag is advisory and the data it gates is
//!    protected by a lock). Control atomics are every `AtomicBool` plus
//!    the `[atomics] control` list in `concurrency.toml`.
//! 2. **Load-then-store.** A `load` followed by a `store` on the same
//!    atomic in one function is a read-modify-write spelled as two
//!    non-atomic halves: a concurrent writer between them is lost. Use
//!    `fetch_*`/`compare_exchange` (or justify with
//!    `// lint: allow(atomics, <why the race is benign>)`).

use super::{bounded_matches, is_ident_byte, Finding, Lint};
use crate::manifest::ConcurrencyManifest;
use crate::scopes::{analyze_fns, receiver_name};
use crate::source::SourceFile;

/// A declared atomic field/static/local: `name: AtomicBool` etc.
#[derive(Clone, Debug, PartialEq, Eq)]
struct AtomicDecl {
    name: String,
    ty: String,
}

pub(crate) fn lint_atomics(
    src: &SourceFile,
    manifest: &ConcurrencyManifest,
    out: &mut Vec<Finding>,
) {
    let decls = atomic_decls(src);
    let is_control = |name: &str| {
        manifest.is_control(name)
            || decls.iter().any(|d| d.name == name && d.ty == "AtomicBool")
    };
    let is_atomic = |name: &str| manifest.is_control(name) || decls.iter().any(|d| d.name == name);

    // 1. Relaxed orderings on control atomics.
    for op in [".load(", ".store("] {
        for at in ops_on_atomics(src, op) {
            let name = receiver_name(&src.code, at);
            if !is_control(&name) {
                continue;
            }
            let line = src.line_of(at);
            // `relaxed-ok` may sit on the operation's line or on its own
            // line directly above (the operation line is often full).
            if src.is_test_line(line)
                || src.is_allowed(line, Lint::Atomics.name())
                || src.has_relaxed_ok(line)
                || src.has_relaxed_ok(line.saturating_sub(1))
            {
                continue;
            }
            out.push(Finding {
                lint: Lint::Atomics,
                file: src.path.clone(),
                line,
                message: format!(
                    "`Ordering::Relaxed` on control atomic `{name}` (read cross-thread as \
                     a signal); use Acquire/Release or justify with `// relaxed-ok: \
                     <invariant>`"
                ),
            });
        }
    }

    // 2. Load-then-store on the same atomic within one function.
    for scope in analyze_fns(src) {
        let (open, close) = scope.body;
        let body = &src.code[open..=close.min(src.code.len() - 1)];
        let loads = atomic_op_sites(body, ".load(", open, &is_atomic);
        let stores = atomic_op_sites(body, ".store(", open, &is_atomic);
        for (store_at, store_name) in &stores {
            let Some((load_at, _)) =
                loads.iter().find(|(la, ln)| la < store_at && ln == store_name)
            else {
                continue;
            };
            let line = src.line_of(*store_at);
            let load_line = src.line_of(*load_at);
            if src.is_test_line(line)
                || src.is_allowed(line, Lint::Atomics.name())
                || src.is_allowed(load_line, Lint::Atomics.name())
            {
                continue;
            }
            out.push(Finding {
                lint: Lint::Atomics,
                file: src.path.clone(),
                line,
                message: format!(
                    "`{store_name}.store(...)` after `{store_name}.load(...)` (line \
                     {load_line}) in `{}` is a torn read-modify-write; use \
                     `fetch_*`/`compare_exchange`",
                    scope.name
                ),
            });
        }
    }
    out.sort_by_key(|f| f.line);
    out.dedup();
}

/// Offsets of `op` calls whose argument list mentions `Relaxed`.
fn ops_on_atomics<'a>(src: &'a SourceFile, op: &'a str) -> impl Iterator<Item = usize> + 'a {
    src.code.match_indices(op).filter_map(move |(at, _)| {
        let args_open = at + op.len() - 1;
        let args = paren_args(&src.code, args_open)?;
        args.contains("Relaxed").then_some(at)
    })
}

/// `(offset, receiver)` of every `op` call on a declared atomic in `body`
/// (offsets rebased to the file via `base`).
fn atomic_op_sites(
    body: &str,
    op: &str,
    base: usize,
    is_atomic: &dyn Fn(&str) -> bool,
) -> Vec<(usize, String)> {
    body.match_indices(op)
        .filter_map(|(at, _)| {
            let name = receiver_name(body, at);
            is_atomic(&name).then_some((base + at, name))
        })
        .collect()
}

/// The text between the `(` at `open` and its matching `)`.
fn paren_args(code: &str, open: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    if bytes.get(open) != Some(&b'(') {
        return None;
    }
    let mut depth = 0usize;
    for (j, &b) in bytes[open..].iter().enumerate() {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&code[open + 1..open + j]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Every `name: AtomicXxx` declaration in the file (fields, statics, and
/// locals alike — over-collecting is safe, the rules only use the map to
/// recognize receivers).
fn atomic_decls(src: &SourceFile) -> Vec<AtomicDecl> {
    let code = &src.code;
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for at in bounded_matches(code, "Atomic") {
        let ty: String =
            code[at..].bytes().take_while(|&b| is_ident_byte(b)).map(char::from).collect();
        if !matches!(
            ty.as_str(),
            "AtomicBool"
                | "AtomicUsize"
                | "AtomicIsize"
                | "AtomicU8"
                | "AtomicU16"
                | "AtomicU32"
                | "AtomicU64"
                | "AtomicI8"
                | "AtomicI16"
                | "AtomicI32"
                | "AtomicI64"
        ) {
            continue;
        }
        // Walk back over whitespace to a `:`; the ident before it is the
        // declared name. (`Mutex<AtomicBool>`-style nesting has no `:`
        // directly before the type and is skipped.)
        let mut i = at;
        while i > 0 && (bytes[i - 1] == b' ' || bytes[i - 1] == b'\t') {
            i -= 1;
        }
        if i == 0 || bytes[i - 1] != b':' {
            continue;
        }
        i -= 1;
        while i > 0 && (bytes[i - 1] == b' ' || bytes[i - 1] == b'\t') {
            i -= 1;
        }
        let end = i;
        while i > 0 && is_ident_byte(bytes[i - 1]) {
            i -= 1;
        }
        if i == end {
            continue;
        }
        let name = code[i..end].to_string();
        let decl = AtomicDecl { name, ty };
        if !out.contains(&decl) {
            out.push(decl);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::ConcurrencyManifest;
    use crate::rules::{lint_source, lint_source_with, Scope};

    fn scope() -> Scope {
        Scope { atomics: true, ..Default::default() }
    }

    #[test]
    fn relaxed_counter_is_not_a_finding() {
        let src = "struct C { hits: AtomicU64 }\nimpl C {\n    fn bump(&self) { self.hits.fetch_add(1, Ordering::Relaxed); }\n    fn get(&self) -> u64 { self.hits.load(Ordering::Relaxed) }\n}\n";
        let f = lint_source(&SourceFile::parse("t.rs", src), scope());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn relaxed_bool_flag_is_flagged_without_relaxed_ok() {
        let src = "struct Q { closed: AtomicBool }\nimpl Q {\n    fn is_closed(&self) -> bool { self.closed.load(Ordering::Relaxed) }\n}\n";
        let f = lint_source(&SourceFile::parse("t.rs", src), scope());
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("control atomic `closed`"));
    }

    #[test]
    fn relaxed_ok_with_reason_suppresses() {
        let src = "struct Q { closed: AtomicBool }\nimpl Q {\n    fn is_closed(&self) -> bool { self.closed.load(Ordering::Relaxed) } // relaxed-ok: advisory; state is lock-protected\n}\n";
        let f = lint_source(&SourceFile::parse("t.rs", src), scope());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn bare_relaxed_ok_without_reason_does_not_suppress() {
        let src = "struct Q { closed: AtomicBool }\nimpl Q {\n    fn is_closed(&self) -> bool { self.closed.load(Ordering::Relaxed) } // relaxed-ok:\n}\n";
        let f = lint_source(&SourceFile::parse("t.rs", src), scope());
        assert_eq!(f.len(), 1, "a reason is mandatory: {f:?}");
    }

    #[test]
    fn manifest_control_list_extends_beyond_bools() {
        let manifest = ConcurrencyManifest {
            control_atomics: vec!["epoch".to_string()],
            ..Default::default()
        };
        let src = "struct C { epoch: AtomicU64 }\nimpl C {\n    fn now(&self) -> u64 { self.epoch.load(Ordering::Relaxed) }\n}\n";
        let f = lint_source_with(&SourceFile::parse("t.rs", src), scope(), &manifest);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn acquire_release_on_control_flag_is_clean() {
        let src = "struct Q { closed: AtomicBool }\nimpl Q {\n    fn close(&self) { self.closed.store(true, Ordering::Release); }\n    fn is_closed(&self) -> bool { self.closed.load(Ordering::Acquire) }\n}\n";
        let f = lint_source(&SourceFile::parse("t.rs", src), scope());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn load_then_store_is_a_torn_rmw_finding() {
        let src = "struct C { count: AtomicUsize }\nimpl C {\n    fn reset_if_big(&self) {\n        let c = self.count.load(Ordering::Acquire);\n        if c > 10 { self.count.store(0, Ordering::Release); }\n    }\n}\n";
        let f = lint_source(&SourceFile::parse("t.rs", src), scope());
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("compare_exchange"));
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn store_without_prior_load_is_clean() {
        let src = "struct C { count: AtomicUsize }\nimpl C {\n    fn clear(&self) { self.count.store(0, Ordering::Relaxed); }\n    fn len(&self) -> usize { self.count.load(Ordering::Relaxed) }\n}\n";
        let f = lint_source(&SourceFile::parse("t.rs", src), scope());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn non_atomic_load_store_pairs_are_ignored() {
        let src = "fn f(io: &mut W) {\n    let x = io.load(Ordering::Relaxed);\n    io.store(x, Ordering::Relaxed);\n}\n";
        let f = lint_source(&SourceFile::parse("t.rs", src), scope());
        assert!(f.is_empty(), "receiver `io` is not a declared atomic: {f:?}");
    }
}
