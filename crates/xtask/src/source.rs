//! Lexical model of one Rust source file.
//!
//! The lints are deliberately source-level (no syn, no rustc — the registry
//! is offline), so correctness hinges on a faithful *lexical* pass: rule
//! patterns must never match inside comments or string literals, and
//! `#[cfg(test)]` modules are exempt from the panic/cast policies. This
//! module produces a blanked "code view" of the file (same byte offsets,
//! comment and string interiors replaced by spaces), the per-line
//! `// lint: allow(...)` annotations, and the test-module line mask.

/// One `// lint: allow(<name>[, reason])` annotation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line the annotation sits on (and therefore exempts).
    pub line: usize,
    /// Lint name: `panic`, `lossy-cast`, `std-hash`, or `missing-invariants`.
    pub name: String,
    /// Optional free-text justification after the comma.
    pub reason: Option<String>,
}

/// Which reachability closures a `// hot-path-root` annotation seeds (the
/// L9/L10 call-graph roots — see [`crate::callgraph`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RootKind {
    /// `// hot-path-root` — seeds both the zero-alloc (L9) and the
    /// panic-free (L10) closures.
    Both,
    /// `// hot-path-root(alloc)` — L9 only.
    Alloc,
    /// `// hot-path-root(serve)` — L10 only.
    Serve,
}

impl RootKind {
    /// True if this root seeds the L9 (zero-alloc) closure.
    pub fn seeds_alloc(self) -> bool {
        matches!(self, RootKind::Both | RootKind::Alloc)
    }

    /// True if this root seeds the L10 (panic-free serve) closure.
    pub fn seeds_serve(self) -> bool {
        matches!(self, RootKind::Both | RootKind::Serve)
    }
}

/// One `// hot-path-root[(alloc|serve)]` annotation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HotRoot {
    /// 1-based line the annotation sits on. It marks the `fn` declared on
    /// the same line or on the line directly below.
    pub line: usize,
    pub kind: RootKind,
}

/// A parsed source file ready for linting.
pub struct SourceFile {
    /// Repo-relative path label used in findings.
    pub path: String,
    /// Original text (used only to inspect doc comments for L4).
    pub raw: String,
    /// Same length as `raw`, with comment and string *interiors* blanked to
    /// spaces (newlines kept), so token searches and brace matching see only
    /// real code structure.
    pub code: String,
    /// All allow annotations, in file order.
    pub allows: Vec<Allow>,
    /// 1-based lines carrying a `// relaxed-ok: <reason>` annotation with a
    /// non-empty reason (the L6 escape hatch for justified `Relaxed` use).
    pub relaxed_ok: Vec<usize>,
    /// 1-based lines carrying an `// alloc-ok: <reason>` annotation with a
    /// non-empty reason (the L9 escape hatch for justified hot-path
    /// allocation; on a `fn` declaration line it covers the whole body).
    pub alloc_ok: Vec<usize>,
    /// 1-based lines carrying a `// cold-path: <reason>` annotation with a
    /// non-empty reason. The `fn` declared on the same line or directly
    /// below is pruned from the reachability closures (setup/teardown code
    /// that a hot root calls once per lifetime, not per batch).
    pub cold_paths: Vec<usize>,
    /// 1-based lines carrying a `// safety: <reason>` annotation with a
    /// non-empty reason (the L15 `unsafe-audit` justification; on a fn /
    /// impl declaration line it covers the whole item).
    pub safety_ok: Vec<usize>,
    /// 1-based lines carrying a `// bounded-by: <reason>` annotation with a
    /// non-empty reason (the L14 `deadline-safety` justification for a
    /// blocking call reachable from a serve root).
    pub bounded_by: Vec<usize>,
    /// `// hot-path-root[(alloc|serve)]` annotations, in file order.
    pub hot_roots: Vec<HotRoot>,
    /// Byte offset of the start of each line.
    line_starts: Vec<usize>,
    /// `in_test[i]` is true if 1-based line `i + 1` lies inside a
    /// `#[cfg(test)]` item's braces.
    in_test: Vec<bool>,
}

impl SourceFile {
    pub fn parse(path: impl Into<String>, raw: impl Into<String>) -> Self {
        let path = path.into();
        let raw = raw.into();
        let (code, comments) = blank_non_code(&raw);
        let line_starts = line_starts(&raw);
        let allows = parse_allows(&comments, &line_starts);
        let relaxed_ok = parse_reasoned(&comments, &line_starts, "relaxed-ok:");
        let alloc_ok = parse_reasoned(&comments, &line_starts, "alloc-ok:");
        let cold_paths = parse_reasoned(&comments, &line_starts, "cold-path:");
        let safety_ok = parse_reasoned(&comments, &line_starts, "safety:");
        let bounded_by = parse_reasoned(&comments, &line_starts, "bounded-by:");
        let hot_roots = parse_hot_roots(&comments, &line_starts);
        let in_test = test_line_mask(&code, &line_starts);
        Self {
            path,
            raw,
            code,
            allows,
            relaxed_ok,
            alloc_ok,
            cold_paths,
            safety_ok,
            bounded_by,
            hot_roots,
            line_starts,
            in_test,
        }
    }

    /// 1-based line containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// True if 1-based `line` is inside a `#[cfg(test)]` item.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.in_test.get(line.saturating_sub(1)).copied().unwrap_or(false)
    }

    /// True if `line` carries an allow annotation for `name`.
    pub fn is_allowed(&self, line: usize, name: &str) -> bool {
        self.allows.iter().any(|a| a.line == line && a.name == name)
    }

    /// True if `line` carries a `// relaxed-ok: <reason>` annotation. The
    /// reason is mandatory — a bare `relaxed-ok:` does not count.
    pub fn has_relaxed_ok(&self, line: usize) -> bool {
        self.relaxed_ok.contains(&line)
    }

    /// True if `line` carries an `// alloc-ok: <reason>` annotation. The
    /// reason is mandatory — a bare `alloc-ok:` does not count.
    pub fn has_alloc_ok(&self, line: usize) -> bool {
        self.alloc_ok.contains(&line)
    }

    /// True if `line` carries a `// cold-path: <reason>` annotation (reason
    /// mandatory).
    pub fn has_cold_path(&self, line: usize) -> bool {
        self.cold_paths.contains(&line)
    }

    /// True if `line` carries a `// safety: <reason>` annotation (reason
    /// mandatory).
    pub fn has_safety_ok(&self, line: usize) -> bool {
        self.safety_ok.contains(&line)
    }

    /// True if `line` carries a `// bounded-by: <reason>` annotation
    /// (reason mandatory).
    pub fn has_bounded_by(&self, line: usize) -> bool {
        self.bounded_by.contains(&line)
    }

    /// The root annotation covering a `fn` declared on 1-based `fn_line`:
    /// a trailing annotation on the declaration line itself, or a
    /// whole-line comment directly above (one whose code-view line is
    /// blank — a trailing annotation on the *previous* statement's line
    /// must not leak downward).
    pub fn root_kind_for(&self, fn_line: usize) -> Option<RootKind> {
        self.hot_roots
            .iter()
            .find(|r| {
                r.line == fn_line
                    || (r.line + 1 == fn_line && self.code_line(r.line).trim().is_empty())
            })
            .map(|r| r.kind)
    }

    /// The code-view text of 1-based `line` (comments/strings blanked).
    pub fn code_line(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end =
            self.line_starts.get(line).map_or(self.code.len(), |&next| next.saturating_sub(1));
        &self.code[start..end]
    }
}

fn line_starts(text: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// Replaces comment and string-literal interiors with spaces, preserving
/// byte offsets and newlines. Returns the blanked code and a same-length
/// buffer holding *only* comment text (everything else blanked), from which
/// allow annotations are parsed.
fn blank_non_code(text: &str) -> (String, String) {
    let bytes = text.as_bytes();
    let mut code = bytes.to_vec();
    let mut comments = vec![b' '; bytes.len()];
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = line_end(bytes, i);
                for j in i..end {
                    comments[j] = bytes[j];
                    code[j] = b' ';
                }
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                for k in i..j {
                    comments[k] = bytes[k];
                    if bytes[k] != b'\n' {
                        code[k] = b' ';
                    }
                }
                i = j;
            }
            b'"' => {
                let end = string_end(bytes, i + 1);
                for j in i + 1..end.saturating_sub(1).max(i + 1) {
                    if bytes[j] != b'\n' {
                        code[j] = b' ';
                    }
                }
                i = end;
            }
            b'r' if is_raw_string_start(bytes, i) => {
                let hashes = count_hashes(bytes, i + 1);
                let end = raw_string_end(bytes, i + 1 + hashes + 1, hashes);
                for j in i + 1 + hashes + 1..end.saturating_sub(1 + hashes).max(i + 1) {
                    if bytes[j] != b'\n' {
                        code[j] = b' ';
                    }
                }
                i = end;
            }
            b'\'' => {
                // Distinguish char literals from lifetimes: a char literal
                // closes within a few bytes; a lifetime is `'ident` with no
                // closing quote.
                if let Some(end) = char_literal_end(bytes, i) {
                    for j in i + 1..end - 1 {
                        code[j] = b' ';
                    }
                    i = end;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    // Both buffers only ever blank ASCII bytes, so they remain valid UTF-8.
    (String::from_utf8(code).expect("blanking preserves UTF-8"),
     String::from_utf8(comments).expect("blanking preserves UTF-8"))
}

fn line_end(bytes: &[u8], from: usize) -> usize {
    bytes[from..].iter().position(|&b| b == b'\n').map_or(bytes.len(), |p| from + p)
}

/// Past-the-end offset of a `"..."` literal whose body starts at `from`.
fn string_end(bytes: &[u8], from: usize) -> usize {
    let mut j = from;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    bytes.len()
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // `r"..."` or `r#"..."#` (any hash count); `r` must not be part of a
    // longer identifier (e.g. `for`, `str`).
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return false;
    }
    let mut j = i + 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

fn count_hashes(bytes: &[u8], from: usize) -> usize {
    bytes[from..].iter().take_while(|&&b| b == b'#').count()
}

/// Past-the-end offset of a raw string whose body starts at `from` and
/// closes with `"` followed by `hashes` hash marks.
fn raw_string_end(bytes: &[u8], from: usize, hashes: usize) -> usize {
    let mut j = from;
    while j < bytes.len() {
        if bytes[j] == b'"' && bytes[j + 1..].iter().take(hashes).filter(|&&b| b == b'#').count() == hashes {
            return j + 1 + hashes;
        }
        j += 1;
    }
    bytes.len()
}

/// Past-the-end offset of a char literal starting at the `'` at `i`, or
/// `None` if this is a lifetime.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let next = *bytes.get(i + 1)?;
    if next == b'\\' {
        // Escaped char: scan to the closing quote (handles \x7f, \u{...}).
        let mut j = i + 2;
        while j < bytes.len() && j < i + 12 {
            if bytes[j] == b'\'' {
                return Some(j + 1);
            }
            j += 1;
        }
        return None;
    }
    // `'c'` — a plain one-char literal (multi-byte UTF-8 chars included).
    let char_len = utf8_len(next);
    if bytes.get(i + 1 + char_len) == Some(&b'\'') {
        return Some(i + 2 + char_len);
    }
    None
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >> 5 == 0b110 => 2,
        b if b >> 4 == 0b1110 => 3,
        _ => 4,
    }
}

/// Extracts `lint: allow(name[, reason])` annotations from comment text.
fn parse_allows(comments: &str, line_starts: &[usize]) -> Vec<Allow> {
    const MARKER: &str = "lint: allow(";
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = comments[from..].find(MARKER) {
        let start = from + pos + MARKER.len();
        let Some(close) = comments[start..].find(')') else { break };
        let inner = &comments[start..start + close];
        let (name, reason) = match inner.split_once(',') {
            Some((n, r)) => (n.trim().to_string(), Some(r.trim().to_string())),
            None => (inner.trim().to_string(), None),
        };
        let line = match line_starts.binary_search(&(from + pos)) {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        out.push(Allow { line, name, reason });
        from = start + close;
    }
    out
}

/// Extracts `<marker> <reason>` annotations (`relaxed-ok:`, `alloc-ok:`,
/// `cold-path:`) from comment text. Only annotations with a non-empty
/// reason are recorded — the justification is the point of the escape
/// hatch, so a bare marker does not suppress anything.
fn parse_reasoned(comments: &str, line_starts: &[usize], marker: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = comments[from..].find(marker) {
        let at = from + pos;
        let line = match line_starts.binary_search(&at) {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        // The comments buffer holds no newlines (they stay blanked), so the
        // reason must be cut at the annotation's own line end — otherwise a
        // bare marker would borrow the next comment in the file as its
        // "reason".
        let end = line_starts.get(line).map_or(comments.len(), |&n| n - 1);
        let reason = comments[at + marker.len()..end].trim();
        if !reason.is_empty() && !out.contains(&line) {
            out.push(line);
        }
        from = at + marker.len();
    }
    out
}

/// Extracts `hot-path-root[(alloc|serve)]` annotations from comment text.
/// An unknown parenthesized kind is ignored entirely (a typo must not
/// silently seed the wrong closure — the root simply doesn't register and
/// the fixture/tree tests catch the missing root).
fn parse_hot_roots(comments: &str, line_starts: &[usize]) -> Vec<HotRoot> {
    const MARKER: &str = "hot-path-root";
    let mut out: Vec<HotRoot> = Vec::new();
    let mut from = 0;
    while let Some(pos) = comments[from..].find(MARKER) {
        let at = from + pos;
        from = at + MARKER.len();
        let line = match line_starts.binary_search(&at) {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        // Bound the kind suffix to the annotation's own line (the comments
        // buffer holds no newlines).
        let end = line_starts.get(line).map_or(comments.len(), |&n| n - 1);
        let rest = &comments[at + MARKER.len()..end];
        let kind = if let Some(tail) = rest.strip_prefix('(') {
            match tail.split(')').next().map(str::trim) {
                Some("alloc") => Some(RootKind::Alloc),
                Some("serve") => Some(RootKind::Serve),
                _ => None,
            }
        } else {
            Some(RootKind::Both)
        };
        let Some(kind) = kind else { continue };
        if !out.iter().any(|r| r.line == line) {
            out.push(HotRoot { line, kind });
        }
    }
    out
}

/// Marks every line inside a `#[cfg(test)]` item's brace span.
fn test_line_mask(code: &str, line_starts: &[usize]) -> Vec<bool> {
    let mut mask = vec![false; line_starts.len()];
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find("#[cfg(test)]") {
        let attr = from + pos;
        // The braces of the annotated item (module or fn).
        if let Some(open) = bytes[attr..].iter().position(|&b| b == b'{').map(|p| attr + p) {
            let mut depth = 0usize;
            let mut close = open;
            for (j, &b) in bytes[open..].iter().enumerate() {
                match b {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            close = open + j;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let first = match line_starts.binary_search(&attr) {
                Ok(i) => i,
                Err(i) => i - 1,
            };
            let last = match line_starts.binary_search(&close) {
                Ok(i) => i,
                Err(i) => i - 1,
            };
            for line in mask.iter_mut().take(last + 1).skip(first) {
                *line = true;
            }
            from = close.max(attr + 1);
        } else {
            from = attr + 1;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let a = \"panic!\"; // panic! here\nlet b = 1; /* .unwrap() */\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.code.contains("panic!"));
        assert!(!f.code.contains(".unwrap()"));
        assert_eq!(f.code.len(), src.len());
    }

    #[test]
    fn allow_annotations_are_parsed_with_reasons() {
        let src = "let x = n as f32; // lint: allow(lossy-cast, n < 2^24)\nlet y = 1;\n";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].name, "lossy-cast");
        assert_eq!(f.allows[0].reason.as_deref(), Some("n < 2^24"));
        assert!(f.is_allowed(1, "lossy-cast"));
        assert!(!f.is_allowed(2, "lossy-cast"));
    }

    #[test]
    fn cfg_test_spans_are_masked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn tail() {}\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn lifetimes_do_not_start_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'y';\n";
        let f = SourceFile::parse("t.rs", src);
        // The lifetime text survives; the char body is blanked.
        assert!(f.code.contains("'a>"));
        assert!(f.code.contains("' '"));
    }

    #[test]
    fn relaxed_ok_requires_a_reason() {
        let src = "a.load(Ordering::Relaxed); // relaxed-ok: advisory counter\nb.load(Ordering::Relaxed); // relaxed-ok:\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.has_relaxed_ok(1));
        assert!(!f.has_relaxed_ok(2));
    }

    #[test]
    fn alloc_ok_and_cold_path_require_reasons() {
        let src = "let v = Vec::new(); // alloc-ok: grows once at startup\n\
                   let w = Vec::new(); // alloc-ok:\n\
                   // cold-path: runs once per worker lifetime\nfn exit_path() {}\n\
                   // cold-path:\nfn not_cold() {}\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.has_alloc_ok(1));
        assert!(!f.has_alloc_ok(2), "a reason is mandatory");
        assert!(f.has_cold_path(3));
        assert!(!f.has_cold_path(5), "a reason is mandatory");
    }

    #[test]
    fn safety_and_bounded_by_require_reasons() {
        let src = "unsafe { ptr.read() } // safety: caller checked bounds\n\
                   unsafe { ptr.read() } // safety:\n\
                   let w = rx.recv(); // bounded-by: sender closes on shutdown\n\
                   let v = rx.recv(); // bounded-by:\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.has_safety_ok(1));
        assert!(!f.has_safety_ok(2), "a reason is mandatory");
        assert!(f.has_bounded_by(3));
        assert!(!f.has_bounded_by(4), "a reason is mandatory");
    }

    #[test]
    fn hot_root_annotations_parse_kinds() {
        let src = "fn a() {} // hot-path-root\n\
                   // hot-path-root(alloc)\nfn b() {}\n\
                   fn c() {} // hot-path-root(serve)\n\
                   fn d() {} // hot-path-root(typo)\n";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.root_kind_for(1), Some(RootKind::Both));
        assert_eq!(f.root_kind_for(3), Some(RootKind::Alloc), "line-above form");
        assert_eq!(f.root_kind_for(4), Some(RootKind::Serve));
        assert_eq!(f.root_kind_for(5), None, "unknown kind must not register");
        assert!(f.root_kind_for(1).unwrap().seeds_alloc());
        assert!(f.root_kind_for(1).unwrap().seeds_serve());
        assert!(!f.root_kind_for(3).unwrap().seeds_serve());
        assert!(!f.root_kind_for(4).unwrap().seeds_alloc());
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let s = r#\"has .unwrap() inside\"#;\nlet t = 2;\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.code.contains(".unwrap()"));
        assert!(f.code.contains("let t = 2"));
    }
}
