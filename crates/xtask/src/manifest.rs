//! The `concurrency.toml` manifest: the workspace's declared concurrency
//! discipline, consumed by the L5 (lock-order) and L6 (atomics) rules.
//!
//! The manifest lives at the workspace root and declares two facts that
//! cannot be inferred from any single file:
//!
//! * `[lock-order] order = [...]` — the canonical acquisition order of the
//!   workspace's named locks. A lock earlier in the list must never be
//!   acquired while a later one is held. Locks are named by the field or
//!   binding the guard comes from (`self.fifo.lock()` → `fifo`).
//! * `[atomics] control = [...]` — atomic fields that other threads read
//!   as *control signals* (shutdown flags, mode switches). `AtomicBool`
//!   fields are control signals implicitly; this list adds non-bool ones.
//! * `[lock-held] no_alloc = [...]` — locks whose critical sections must
//!   not (transitively) heap-allocate. L13 (`lock-held-effects`) flags any
//!   call with an `Alloc` effect made while one of these guards is live.
//!
//! The parser is a deliberate TOML subset (sections, string values, and
//! string arrays, `#` comments) because this crate is dependency-free: a
//! lint gate must never be the part of the build that fails to resolve.

use std::io;
use std::path::Path;

/// File name looked up at the workspace root.
pub const MANIFEST_NAME: &str = "concurrency.toml";

/// Parsed manifest contents. An absent manifest parses as `default()`:
/// no declared order (cycle detection still runs) and no extra control
/// atomics (`AtomicBool` fields are still control signals).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConcurrencyManifest {
    /// Canonical lock-acquisition order, outermost first.
    pub lock_order: Vec<String>,
    /// Atomic field names treated as cross-thread control signals in
    /// addition to every `AtomicBool` field.
    pub control_atomics: Vec<String>,
    /// Locks whose critical sections must not transitively heap-allocate
    /// (L13 `lock-held-effects` checks the `Alloc` effect against this).
    pub no_alloc_locks: Vec<String>,
}

impl ConcurrencyManifest {
    /// Position of `lock` in the canonical order, if declared.
    pub fn order_index(&self, lock: &str) -> Option<usize> {
        self.lock_order.iter().position(|l| l == lock)
    }

    /// True if `name` is declared a control atomic.
    pub fn is_control(&self, name: &str) -> bool {
        self.control_atomics.iter().any(|c| c == name)
    }

    /// True if critical sections under `lock` must stay allocation-free.
    pub fn is_no_alloc_lock(&self, lock: &str) -> bool {
        self.no_alloc_locks.iter().any(|l| l == lock)
    }
}

/// Loads `concurrency.toml` from `root`. A missing file is not an error —
/// the rules degrade to manifest-free behavior — but a malformed file is,
/// so a typo cannot silently disable the discipline it declares.
pub fn load(root: &Path) -> io::Result<ConcurrencyManifest> {
    let path = root.join(MANIFEST_NAME);
    if !path.is_file() {
        return Ok(ConcurrencyManifest::default());
    }
    let text = std::fs::read_to_string(&path)?;
    parse(&text).map_err(|e| {
        io::Error::new(io::ErrorKind::InvalidData, format!("{}: {e}", path.display()))
    })
}

/// Parses the manifest text. See the module docs for the accepted subset.
pub fn parse(text: &str) -> Result<ConcurrencyManifest, String> {
    let mut manifest = ConcurrencyManifest::default();
    let mut section = String::new();
    // Logical lines: a `[` array value may span physical lines until `]`.
    let mut lines = text.lines().enumerate().peekable();
    while let Some((i, raw)) = lines.next() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[') {
            let name = name
                .strip_suffix(']')
                .ok_or_else(|| format!("line {}: unterminated section header", i + 1))?;
            section = name.trim().to_string();
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected `key = value`", i + 1))?;
        let key = key.trim();
        let mut value = value.trim().to_string();
        while value.starts_with('[') && !value.ends_with(']') {
            let (_, next) = lines
                .next()
                .ok_or_else(|| format!("line {}: unterminated array", i + 1))?;
            value.push(' ');
            value.push_str(strip_comment(next).trim());
        }
        let items = parse_string_array(&value).map_err(|e| format!("line {}: {e}", i + 1))?;
        match (section.as_str(), key) {
            ("lock-order", "order") => manifest.lock_order = items,
            ("atomics", "control") => manifest.control_atomics = items,
            ("lock-held", "no_alloc") => manifest.no_alloc_locks = items,
            (s, k) => return Err(format!("line {}: unknown key `{k}` in section `[{s}]`", i + 1)),
        }
    }
    Ok(manifest)
}

fn strip_comment(line: &str) -> &str {
    // The subset has no `#` inside strings, so a bare split is faithful.
    line.split_once('#').map_or(line, |(before, _)| before)
}

fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("expected a `[\"...\"]` array, got `{value}`"))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue; // trailing comma
        }
        let unquoted = item
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| format!("array items must be double-quoted strings, got `{item}`"))?;
        out.push(unquoted.to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_comments() {
        let text = "\
# canonical order\n\
[lock-order]\n\
order = [\"fifo\", \"shards\"] # outermost first\n\
\n\
[atomics]\n\
control = [\n\
    \"closed\",  # queue shutdown\n\
    \"stop\",\n\
]\n";
        let m = parse(text).unwrap();
        assert_eq!(m.lock_order, vec!["fifo", "shards"]);
        assert_eq!(m.control_atomics, vec!["closed", "stop"]);
        assert_eq!(m.order_index("shards"), Some(1));
        assert!(m.is_control("stop"));
        assert!(!m.is_control("fifo"));
    }

    #[test]
    fn lock_held_no_alloc_parses() {
        let text = "[lock-held]\nno_alloc = [\"delta\", \"ingest\"]\n";
        let m = parse(text).unwrap();
        assert_eq!(m.no_alloc_locks, vec!["delta", "ingest"]);
        assert!(m.is_no_alloc_lock("delta"));
        assert!(!m.is_no_alloc_lock("fifo"));
        assert!(parse("[lock-held]\nnope = [\"a\"]\n").is_err());
    }

    #[test]
    fn empty_text_is_default() {
        assert_eq!(parse("").unwrap(), ConcurrencyManifest::default());
    }

    #[test]
    fn unknown_keys_and_bad_arrays_are_errors() {
        assert!(parse("[lock-order]\nnope = [\"a\"]\n").is_err());
        assert!(parse("[lock-order]\norder = \"a\"\n").is_err());
        assert!(parse("[lock-order]\norder = [a]\n").is_err());
    }

    #[test]
    fn missing_file_loads_as_default() {
        let dir = std::env::temp_dir().join("tg-xtask-no-manifest");
        let _ = std::fs::create_dir_all(&dir);
        assert_eq!(load(&dir).unwrap(), ConcurrencyManifest::default());
    }
}
