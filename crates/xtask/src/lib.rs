//! `tg-xtask` — the workspace's static-analysis suite.
//!
//! Run as `cargo run -p tg-xtask -- lint` (text output) or
//! `cargo run -p tg-xtask -- lint --format json` (machine-readable, for
//! CI). The same entry point backs the repo's `tests/lint_gate.rs`, so
//! `cargo test` fails on any new violation.
//!
//! The analyzer is std-only and source-level: the build environment has no
//! registry access, and a lint gate must never be the part of the build
//! that breaks. See [`rules`] for what each lint enforces and
//! [`source`] for the lexical model that keeps patterns from matching
//! inside comments, strings, or `#[cfg(test)]` items.

pub mod manifest;
pub mod report;
pub mod rules;
pub mod scopes;
pub mod source;

pub use manifest::ConcurrencyManifest;
pub use report::{render_json, render_text};
pub use rules::{lint_source, lint_source_with, Finding, Lint, Scope};
pub use source::SourceFile;

use rules::{check_lock_graph, extract_lock_edges, LockEdge};
use std::collections::BTreeSet;
use std::io;
use std::path::Path;

/// Crates whose `src/` trees are subject to L1 (no-panic) and L2
/// (lossy-cast) — the library crates on the inference path. `tg-bench` is
/// a harness (panicking with context is its job) and `tg-xtask` analyzes
/// rather than serves, so neither is listed.
pub const LIBRARY_CRATES: &[&str] = &[
    "crates/tensor",
    "crates/tgraph",
    "crates/tgat",
    "crates/core",
    "crates/datasets",
    "crates/serve",
    "crates/telemetry",
];

/// Hot-path files where SipHash maps are banned (L3): the §4 memoization,
/// dedup, and time-encode caches, their key packing, and their snapshot
/// codec.
pub const HOT_HASH_FILES: &[&str] = &[
    "crates/core/src/cache.rs",
    "crates/core/src/dedup.rs",
    "crates/core/src/timecache.rs",
    "crates/core/src/hash.rs",
    "crates/core/src/persist.rs",
];

/// Files holding shared cache state whose public mutators must document
/// `# Invariants` (L4).
pub const CACHE_STATE_FILES: &[&str] = &[
    "crates/core/src/cache.rs",
    "crates/core/src/timecache.rs",
    "crates/core/src/persist.rs",
    "crates/serve/src/queue.rs",
    "crates/serve/src/stats.rs",
];

/// Files holding cache/serve accounting state whose counters must be read
/// through the `snapshot()`/`merge()` aggregation path (L8).
pub const COUNTER_FILES: &[&str] = &[
    "crates/core/src/cache.rs",
    "crates/core/src/engine.rs",
    "crates/serve/src/queue.rs",
    "crates/serve/src/server.rs",
    "crates/serve/src/stats.rs",
    "crates/telemetry/src/hist.rs",
];

/// Outcome of a whole-workspace lint run.
#[derive(Clone, Debug)]
pub struct LintReport {
    pub findings: Vec<Finding>,
    pub files_checked: usize,
}

impl LintReport {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Lints every in-scope `.rs` file under `root` (the workspace root).
///
/// Coverage per crate in [`LIBRARY_CRATES`]:
///
/// * `src/` **including `src/bin/`** — full scope (L1–L4 per the file
///   lists above, L6–L8 everywhere). A panicking `src/bin` target is still
///   a panicking release artifact, so bins are no longer exempt.
/// * `tests/` — concurrency lints only (L6, L7): panics are the harness's
///   failure mechanism, but a guard held across a blocking call deadlocks
///   CI just as hard in a test.
/// * The root package's `tests/` (the workspace integration suite) gets
///   the same concurrency-only treatment.
///
/// L5 is *not* run per file here: lock edges from every file of a crate
/// (plus the root suite) are aggregated and the acquisition graph is
/// checked once per crate, because the two halves of a cycle usually live
/// in different files. Files reachable through two crate roots are linted
/// once (paths are canonicalized and deduped).
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let manifest = manifest::load(root)?;
    let mut findings = Vec::new();
    let mut files_checked = 0usize;
    let mut seen: BTreeSet<std::path::PathBuf> = BTreeSet::new();

    // One graph unit per crate, plus one for the workspace-level
    // integration suite (which exercises the same hot paths).
    let mut units: Vec<(Vec<std::path::PathBuf>, Vec<std::path::PathBuf>)> = Vec::new();
    for krate in LIBRARY_CRATES {
        let mut src_files = Vec::new();
        collect_rs_files(&root.join(krate).join("src"), &mut src_files)?;
        let mut test_files = Vec::new();
        collect_rs_files(&root.join(krate).join("tests"), &mut test_files)?;
        units.push((src_files, test_files));
    }
    let mut root_tests = Vec::new();
    collect_rs_files(&root.join("tests"), &mut root_tests)?;
    units.push((Vec::new(), root_tests));

    for (mut src_files, mut test_files) in units {
        src_files.sort();
        test_files.sort();
        let mut edges: Vec<LockEdge> = Vec::new();
        for (is_test_file, path) in src_files
            .iter()
            .map(|p| (false, p))
            .chain(test_files.iter().map(|p| (true, p)))
        {
            let canonical = path.canonicalize().unwrap_or_else(|_| path.clone());
            if !seen.insert(canonical) {
                continue; // already linted via another crate root
            }
            let rel = path
                .strip_prefix(root)
                .unwrap_or(path)
                .to_string_lossy()
                .replace('\\', "/");
            let scope = if is_test_file {
                // Concurrency lints only; L5 edges are aggregated below.
                Scope { atomics: true, lock_across: true, ..Scope::default() }
            } else {
                Scope {
                    panic: true,
                    lossy_cast: true,
                    std_hash: HOT_HASH_FILES.contains(&rel.as_str()),
                    invariants: CACHE_STATE_FILES.contains(&rel.as_str()),
                    lock_order: false, // checked per crate, not per file
                    atomics: true,
                    lock_across: true,
                    counters: COUNTER_FILES.contains(&rel.as_str()),
                }
            };
            let text = std::fs::read_to_string(path)?;
            let src = SourceFile::parse(rel, text);
            findings.extend(lint_source_with(&src, scope, &manifest));
            edges.extend(extract_lock_edges(&src));
            files_checked += 1;
        }
        findings.extend(check_lock_graph(&edges, &manifest));
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings.dedup();
    Ok(LintReport { findings, files_checked })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod fixture_tests {
    //! Self-tests over `fixtures/`: one passing and one violating example
    //! per lint. The fail fixtures also pin *which* lines fire, so a rule
    //! that silently widens or narrows its matching breaks the build.

    use super::*;

    fn lint_fixture(name: &str, scope: Scope) -> Vec<Finding> {
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
        lint_source(&SourceFile::parse(name, text), scope)
    }

    fn scope_for(lint: Lint) -> Scope {
        Scope {
            panic: lint == Lint::Panic,
            lossy_cast: lint == Lint::LossyCast,
            std_hash: lint == Lint::StdHash,
            invariants: lint == Lint::MissingInvariants,
            lock_order: lint == Lint::LockOrder,
            atomics: lint == Lint::Atomics,
            lock_across: lint == Lint::LockAcross,
            counters: lint == Lint::UnguardedCounter,
        }
    }

    #[test]
    fn l1_pass_fixture_is_clean() {
        assert_eq!(lint_fixture("l1_pass.rs", scope_for(Lint::Panic)).len(), 0);
    }

    #[test]
    fn l1_fail_fixture_fires_once_per_panic_site() {
        let f = lint_fixture("l1_fail.rs", scope_for(Lint::Panic));
        assert_eq!(f.len(), 4, "findings: {f:?}");
        assert!(f.iter().all(|x| x.lint == Lint::Panic));
    }

    #[test]
    fn l2_pass_fixture_is_clean() {
        assert_eq!(lint_fixture("l2_pass.rs", scope_for(Lint::LossyCast)).len(), 0);
    }

    #[test]
    fn l2_fail_fixture_fires_on_each_narrowing_cast() {
        let f = lint_fixture("l2_fail.rs", scope_for(Lint::LossyCast));
        assert_eq!(f.len(), 4, "findings: {f:?}");
        assert!(f.iter().all(|x| x.lint == Lint::LossyCast));
    }

    #[test]
    fn l3_pass_fixture_is_clean() {
        assert_eq!(lint_fixture("l3_pass.rs", scope_for(Lint::StdHash)).len(), 0);
    }

    #[test]
    fn l3_fail_fixture_fires_on_std_maps() {
        let f = lint_fixture("l3_fail.rs", scope_for(Lint::StdHash));
        assert_eq!(f.len(), 2, "findings: {f:?}");
        assert!(f.iter().all(|x| x.lint == Lint::StdHash));
    }

    #[test]
    fn l4_pass_fixture_is_clean() {
        assert_eq!(lint_fixture("l4_pass.rs", scope_for(Lint::MissingInvariants)).len(), 0);
    }

    #[test]
    fn l4_fail_fixture_fires_on_undocumented_mutators() {
        let f = lint_fixture("l4_fail.rs", scope_for(Lint::MissingInvariants));
        assert_eq!(f.len(), 2, "findings: {f:?}");
        assert!(f.iter().all(|x| x.lint == Lint::MissingInvariants));
    }

    #[test]
    fn l5_pass_fixture_is_clean() {
        assert_eq!(lint_fixture("l5_pass.rs", scope_for(Lint::LockOrder)).len(), 0);
    }

    #[test]
    fn l5_fail_fixture_fires_on_cycle_and_self_edge() {
        let f = lint_fixture("l5_fail.rs", scope_for(Lint::LockOrder));
        assert_eq!(f.len(), 3, "findings: {f:?}");
        assert!(f.iter().all(|x| x.lint == Lint::LockOrder));
        assert!(f.iter().filter(|x| x.message.contains("cycle")).count() == 2);
        assert!(f.iter().any(|x| x.message.contains("two guards")));
    }

    #[test]
    fn l6_pass_fixture_is_clean() {
        assert_eq!(lint_fixture("l6_pass.rs", scope_for(Lint::Atomics)).len(), 0);
    }

    #[test]
    fn l6_fail_fixture_fires_on_relaxed_control_and_torn_rmw() {
        let f = lint_fixture("l6_fail.rs", scope_for(Lint::Atomics));
        assert_eq!(f.len(), 3, "findings: {f:?}");
        assert!(f.iter().all(|x| x.lint == Lint::Atomics));
        assert!(f.iter().any(|x| x.message.contains("compare_exchange")));
    }

    #[test]
    fn l7_pass_fixture_is_clean() {
        assert_eq!(lint_fixture("l7_pass.rs", scope_for(Lint::LockAcross)).len(), 0);
    }

    #[test]
    fn l7_fail_fixture_fires_on_guard_held_across_expensive_calls() {
        let f = lint_fixture("l7_fail.rs", scope_for(Lint::LockAcross));
        assert_eq!(f.len(), 2, "findings: {f:?}");
        assert!(f.iter().all(|x| x.lint == Lint::LockAcross));
    }

    #[test]
    fn l8_pass_fixture_is_clean() {
        assert_eq!(lint_fixture("l8_pass.rs", scope_for(Lint::UnguardedCounter)).len(), 0);
    }

    #[test]
    fn l8_fail_fixture_fires_on_pub_field_and_torn_getter() {
        let f = lint_fixture("l8_fail.rs", scope_for(Lint::UnguardedCounter));
        assert_eq!(f.len(), 2, "findings: {f:?}");
        assert!(f.iter().all(|x| x.lint == Lint::UnguardedCounter));
        assert!(f.iter().any(|x| x.message.contains("pub atomic")));
        assert!(f.iter().any(|x| x.message.contains("torn snapshot")));
    }

    #[test]
    fn fail_fixtures_fire_under_the_full_scope_too() {
        for name in [
            "l1_fail.rs",
            "l2_fail.rs",
            "l3_fail.rs",
            "l4_fail.rs",
            "l5_fail.rs",
            "l6_fail.rs",
            "l7_fail.rs",
            "l8_fail.rs",
        ] {
            assert!(
                !lint_fixture(name, Scope::all()).is_empty(),
                "{name} should fail under Scope::all()"
            );
        }
    }
}
