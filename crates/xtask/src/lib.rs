//! `tg-xtask` — the workspace's static-analysis suite.
//!
//! Run as `cargo run -p tg-xtask -- lint` (text output) or
//! `cargo run -p tg-xtask -- lint --format json` (machine-readable, for
//! CI). The same entry point backs the repo's `tests/lint_gate.rs`, so
//! `cargo test` fails on any new violation.
//!
//! The analyzer is std-only and source-level: the build environment has no
//! registry access, and a lint gate must never be the part of the build
//! that breaks. See [`rules`] for what each lint enforces and
//! [`source`] for the lexical model that keeps patterns from matching
//! inside comments, strings, or `#[cfg(test)]` items.

pub mod callgraph;
pub mod effects;
pub mod manifest;
pub mod report;
pub mod rules;
pub mod scopes;
pub mod source;

pub use callgraph::CallGraph;
pub use effects::EffectEngine;
pub use manifest::ConcurrencyManifest;
pub use report::{render_json, render_text, SCHEMA_VERSION};
pub use rules::{lint_source, lint_source_with, Finding, Lint, Scope};
pub use source::SourceFile;

use rules::{check_lock_graph, extract_lock_edges, LockEdge};
use std::collections::BTreeSet;
use std::io;
use std::path::Path;

/// Crates whose `src/` trees are subject to L1 (no-panic) and L2
/// (lossy-cast) — the library crates on the inference path. `tg-bench` is
/// a harness (panicking with context is its job) and `tg-xtask` analyzes
/// rather than serves, so neither is listed.
pub const LIBRARY_CRATES: &[&str] = &[
    "crates/tensor",
    "crates/tgraph",
    "crates/tgat",
    "crates/core",
    "crates/datasets",
    "crates/serve",
    "crates/telemetry",
    "crates/error",
];

/// Harness directories — `examples/` and the bench binaries. Covered by
/// the panic/cast/concurrency/determinism lints (an example that panics
/// is the first thing a new user runs into) and included in the
/// call-graph file set, but exempt from the file-list-gated L3/L4/L8.
pub const HARNESS_DIRS: &[&str] = &["examples", "crates/bench/src/bin"];

/// Hot-path files where SipHash maps are banned (L3): the §4 memoization,
/// dedup, and time-encode caches, their key packing, and their snapshot
/// codec.
pub const HOT_HASH_FILES: &[&str] = &[
    "crates/core/src/cache.rs",
    "crates/core/src/dedup.rs",
    "crates/core/src/fingerprint.rs",
    "crates/core/src/timecache.rs",
    "crates/core/src/hash.rs",
    "crates/core/src/persist.rs",
];

/// Files holding shared cache state whose public mutators must document
/// `# Invariants` (L4).
pub const CACHE_STATE_FILES: &[&str] = &[
    "crates/core/src/cache.rs",
    "crates/core/src/fingerprint.rs",
    "crates/core/src/timecache.rs",
    "crates/core/src/persist.rs",
    "crates/serve/src/ingest.rs",
    "crates/serve/src/queue.rs",
    "crates/serve/src/shard.rs",
    "crates/serve/src/stats.rs",
    "crates/tgraph/src/live.rs",
    "crates/tgraph/src/shard.rs",
];

/// Files holding cache/serve accounting state whose counters must be read
/// through the `snapshot()`/`merge()` aggregation path (L8).
pub const COUNTER_FILES: &[&str] = &[
    "crates/core/src/cache.rs",
    "crates/core/src/engine.rs",
    "crates/serve/src/queue.rs",
    "crates/serve/src/server.rs",
    "crates/serve/src/shard.rs",
    "crates/serve/src/stats.rs",
    "crates/telemetry/src/hist.rs",
    "crates/tgraph/src/live.rs",
];

/// Outcome of a whole-workspace lint run.
#[derive(Clone, Debug)]
pub struct LintReport {
    pub findings: Vec<Finding>,
    pub files_checked: usize,
}

impl LintReport {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Lints every in-scope `.rs` file under `root` (the workspace root).
///
/// Coverage per crate in [`LIBRARY_CRATES`]:
///
/// * `src/` **including `src/bin/`** — full scope (L1–L4 per the file
///   lists above, L6–L8 everywhere). A panicking `src/bin` target is still
///   a panicking release artifact, so bins are no longer exempt.
/// * `tests/` — concurrency lints only (L6, L7): panics are the harness's
///   failure mechanism, but a guard held across a blocking call deadlocks
///   CI just as hard in a test.
/// * The root package's `tests/` (the workspace integration suite) gets
///   the same concurrency-only treatment.
///
/// L5 is *not* run per file here: lock edges from every file of a crate
/// (plus the root suite) are aggregated and the acquisition graph is
/// checked once per crate, because the two halves of a cycle usually live
/// in different files. Files reachable through two crate roots are linted
/// once (paths are canonicalized and deduped).
///
/// Whole-workspace passes run after the per-file pass has parsed
/// everything:
///
/// * **L9/L10/L13/L14** — one [`effects::EffectEngine`] spanning every
///   non-test source (library `src/`, `examples/`, bench binaries):
///   SCC-condensed effect summaries power the reachability lints and the
///   guard-liveness checks. Test files are deliberately excluded from the
///   graph: a test helper calling `embed_batch` would otherwise pull the
///   whole test suite into the zero-alloc closure.
/// * **L16** — the engine's hot-path-root summaries are diffed against
///   the committed `effects.lock`; set `UPDATE_EFFECTS_LOCK=1` to
///   regenerate the lock instead of reporting drift.
/// * **L12** — `TgError` construction/matching coverage over *every*
///   parsed file, tests included (a test matching a variant is evidence
///   the variant is handled).
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let manifest = manifest::load(root)?;
    let mut findings = Vec::new();
    let mut seen: BTreeSet<std::path::PathBuf> = BTreeSet::new();
    // Parsed once, reused by the whole-workspace passes below: sources in
    // the call-graph file set, and test sources (L12 only).
    let mut graph_sources: Vec<SourceFile> = Vec::new();
    let mut test_sources: Vec<SourceFile> = Vec::new();

    // One lock-graph unit per crate, plus one for the workspace-level
    // integration suite (which exercises the same hot paths), plus one
    // per harness directory.
    enum Kind {
        Src,
        Test,
        Harness,
    }
    let mut units: Vec<Vec<(Kind, std::path::PathBuf)>> = Vec::new();
    for krate in LIBRARY_CRATES {
        let mut src_files = Vec::new();
        collect_rs_files(&root.join(krate).join("src"), &mut src_files)?;
        let mut test_files = Vec::new();
        collect_rs_files(&root.join(krate).join("tests"), &mut test_files)?;
        src_files.sort();
        test_files.sort();
        units.push(
            src_files
                .into_iter()
                .map(|p| (Kind::Src, p))
                .chain(test_files.into_iter().map(|p| (Kind::Test, p)))
                .collect(),
        );
    }
    let mut root_tests = Vec::new();
    collect_rs_files(&root.join("tests"), &mut root_tests)?;
    root_tests.sort();
    units.push(root_tests.into_iter().map(|p| (Kind::Test, p)).collect());
    for dir in HARNESS_DIRS {
        let mut files = Vec::new();
        collect_rs_files(&root.join(dir), &mut files)?;
        files.sort();
        units.push(files.into_iter().map(|p| (Kind::Harness, p)).collect());
    }

    for unit in units {
        let mut edges: Vec<LockEdge> = Vec::new();
        for (kind, path) in unit {
            let canonical = path.canonicalize().unwrap_or_else(|_| path.clone());
            if !seen.insert(canonical) {
                continue; // already linted via another crate root
            }
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let scope = match kind {
                // Concurrency lints only (plus the unsafe audit — unsafe
                // in a test deserves its safety argument just as much);
                // L5 edges are aggregated below.
                Kind::Test => Scope {
                    atomics: true,
                    lock_across: true,
                    unsafe_audit: true,
                    ..Scope::default()
                },
                Kind::Src => Scope {
                    panic: true,
                    lossy_cast: true,
                    std_hash: HOT_HASH_FILES.contains(&rel.as_str()),
                    invariants: CACHE_STATE_FILES.contains(&rel.as_str()),
                    lock_order: false, // checked per crate, not per file
                    atomics: true,
                    lock_across: true,
                    counters: COUNTER_FILES.contains(&rel.as_str()),
                    unsafe_audit: true,
                    float_determinism: true,
                    ..Scope::default()
                },
                Kind::Harness => Scope {
                    panic: true,
                    lossy_cast: true,
                    atomics: true,
                    lock_across: true,
                    unsafe_audit: true,
                    float_determinism: true,
                    ..Scope::default()
                },
            };
            let text = std::fs::read_to_string(&path)?;
            let src = SourceFile::parse(rel, text);
            findings.extend(lint_source_with(&src, scope, &manifest));
            edges.extend(extract_lock_edges(&src));
            match kind {
                Kind::Test => test_sources.push(src),
                Kind::Src | Kind::Harness => graph_sources.push(src),
            }
        }
        findings.extend(check_lock_graph(&edges, &manifest));
    }

    // L9/L10/L13/L14: one effect-inference pass over the whole non-test
    // file set (SCC-condensed summaries over the workspace call graph).
    let engine = effects::EffectEngine::build(&graph_sources);
    findings.extend(engine.lint_hot_path_alloc());
    findings.extend(engine.lint_panic_reach());
    findings.extend(engine.lint_lock_held(&manifest));
    findings.extend(engine.lint_deadline());

    // L16: hot-path-root summaries vs the committed effects.lock.
    let roots = engine.root_summaries();
    let lock_path = root.join(effects::LOCK_NAME);
    if std::env::var_os("UPDATE_EFFECTS_LOCK").is_some() {
        std::fs::write(&lock_path, effects::serialize_lock(&roots))?;
    } else {
        let committed = std::fs::read_to_string(&lock_path).ok();
        findings.extend(effects::check_drift(&roots, committed.as_deref()));
    }

    // L12: construction/matching coverage over everything, tests included.
    let all: Vec<&SourceFile> = graph_sources.iter().chain(test_sources.iter()).collect();
    findings.extend(rules::lint_error_coverage(&all));

    let files_checked = graph_sources.len() + test_sources.len();
    // Full-key sort so the report (and its JSON rendering) is a pure
    // function of the finding set, independent of lint execution order.
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.lint.name(), &a.message)
            .cmp(&(&b.file, b.line, b.lint.name(), &b.message))
    });
    findings.dedup();
    Ok(LintReport { findings, files_checked })
}

/// Parses the call-graph file set (library `src/`, `examples/`, bench
/// binaries) for the `callgraph` subcommand — same discovery and dedup
/// rules as [`lint_workspace`], no linting.
pub fn workspace_graph_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut seen: BTreeSet<std::path::PathBuf> = BTreeSet::new();
    let mut files = Vec::new();
    for krate in LIBRARY_CRATES {
        collect_rs_files(&root.join(krate).join("src"), &mut files)?;
    }
    for dir in HARNESS_DIRS {
        collect_rs_files(&root.join(dir), &mut files)?;
    }
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let canonical = path.canonicalize().unwrap_or_else(|_| path.clone());
        if !seen.insert(canonical) {
            continue;
        }
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        out.push(SourceFile::parse(rel, std::fs::read_to_string(&path)?));
    }
    Ok(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod fixture_tests {
    //! Self-tests over `fixtures/`: one passing and one violating example
    //! per lint. The fail fixtures also pin *which* lines fire, so a rule
    //! that silently widens or narrows its matching breaks the build.

    use super::*;

    fn lint_fixture(name: &str, scope: Scope) -> Vec<Finding> {
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
        lint_source(&SourceFile::parse(name, text), scope)
    }

    fn scope_for(lint: Lint) -> Scope {
        Scope {
            panic: lint == Lint::Panic,
            lossy_cast: lint == Lint::LossyCast,
            std_hash: lint == Lint::StdHash,
            invariants: lint == Lint::MissingInvariants,
            lock_order: lint == Lint::LockOrder,
            atomics: lint == Lint::Atomics,
            lock_across: lint == Lint::LockAcross,
            counters: lint == Lint::UnguardedCounter,
            hot_path_alloc: lint == Lint::HotPathAlloc,
            panic_reach: lint == Lint::PanicReach,
            lock_held: lint == Lint::LockHeldEffects,
            deadline: lint == Lint::DeadlineSafety,
            unsafe_audit: lint == Lint::UnsafeAudit,
            float_determinism: lint == Lint::FloatDeterminism,
            error_coverage: lint == Lint::ErrorCoverage,
        }
    }

    #[test]
    fn l1_pass_fixture_is_clean() {
        assert_eq!(lint_fixture("l1_pass.rs", scope_for(Lint::Panic)).len(), 0);
    }

    #[test]
    fn l1_fail_fixture_fires_once_per_panic_site() {
        let f = lint_fixture("l1_fail.rs", scope_for(Lint::Panic));
        assert_eq!(f.len(), 4, "findings: {f:?}");
        assert!(f.iter().all(|x| x.lint == Lint::Panic));
    }

    #[test]
    fn l2_pass_fixture_is_clean() {
        assert_eq!(lint_fixture("l2_pass.rs", scope_for(Lint::LossyCast)).len(), 0);
    }

    #[test]
    fn l2_fail_fixture_fires_on_each_narrowing_cast() {
        let f = lint_fixture("l2_fail.rs", scope_for(Lint::LossyCast));
        assert_eq!(f.len(), 4, "findings: {f:?}");
        assert!(f.iter().all(|x| x.lint == Lint::LossyCast));
    }

    #[test]
    fn l3_pass_fixture_is_clean() {
        assert_eq!(lint_fixture("l3_pass.rs", scope_for(Lint::StdHash)).len(), 0);
    }

    #[test]
    fn l3_fail_fixture_fires_on_std_maps() {
        let f = lint_fixture("l3_fail.rs", scope_for(Lint::StdHash));
        assert_eq!(f.len(), 2, "findings: {f:?}");
        assert!(f.iter().all(|x| x.lint == Lint::StdHash));
    }

    #[test]
    fn l4_pass_fixture_is_clean() {
        assert_eq!(lint_fixture("l4_pass.rs", scope_for(Lint::MissingInvariants)).len(), 0);
    }

    #[test]
    fn l4_fail_fixture_fires_on_undocumented_mutators() {
        let f = lint_fixture("l4_fail.rs", scope_for(Lint::MissingInvariants));
        assert_eq!(f.len(), 2, "findings: {f:?}");
        assert!(f.iter().all(|x| x.lint == Lint::MissingInvariants));
    }

    #[test]
    fn l5_pass_fixture_is_clean() {
        assert_eq!(lint_fixture("l5_pass.rs", scope_for(Lint::LockOrder)).len(), 0);
    }

    #[test]
    fn l5_fail_fixture_fires_on_cycle_and_self_edge() {
        let f = lint_fixture("l5_fail.rs", scope_for(Lint::LockOrder));
        assert_eq!(f.len(), 3, "findings: {f:?}");
        assert!(f.iter().all(|x| x.lint == Lint::LockOrder));
        assert!(f.iter().filter(|x| x.message.contains("cycle")).count() == 2);
        assert!(f.iter().any(|x| x.message.contains("two guards")));
    }

    #[test]
    fn l6_pass_fixture_is_clean() {
        assert_eq!(lint_fixture("l6_pass.rs", scope_for(Lint::Atomics)).len(), 0);
    }

    #[test]
    fn l6_fail_fixture_fires_on_relaxed_control_and_torn_rmw() {
        let f = lint_fixture("l6_fail.rs", scope_for(Lint::Atomics));
        assert_eq!(f.len(), 3, "findings: {f:?}");
        assert!(f.iter().all(|x| x.lint == Lint::Atomics));
        assert!(f.iter().any(|x| x.message.contains("compare_exchange")));
    }

    #[test]
    fn l7_pass_fixture_is_clean() {
        assert_eq!(lint_fixture("l7_pass.rs", scope_for(Lint::LockAcross)).len(), 0);
    }

    #[test]
    fn l7_fail_fixture_fires_on_guard_held_across_expensive_calls() {
        let f = lint_fixture("l7_fail.rs", scope_for(Lint::LockAcross));
        assert_eq!(f.len(), 2, "findings: {f:?}");
        assert!(f.iter().all(|x| x.lint == Lint::LockAcross));
    }

    #[test]
    fn l8_pass_fixture_is_clean() {
        assert_eq!(lint_fixture("l8_pass.rs", scope_for(Lint::UnguardedCounter)).len(), 0);
    }

    #[test]
    fn l8_fail_fixture_fires_on_pub_field_and_torn_getter() {
        let f = lint_fixture("l8_fail.rs", scope_for(Lint::UnguardedCounter));
        assert_eq!(f.len(), 2, "findings: {f:?}");
        assert!(f.iter().all(|x| x.lint == Lint::UnguardedCounter));
        assert!(f.iter().any(|x| x.message.contains("pub atomic")));
        assert!(f.iter().any(|x| x.message.contains("torn snapshot")));
    }

    #[test]
    fn l9_pass_fixture_is_clean() {
        assert_eq!(lint_fixture("l9_pass.rs", scope_for(Lint::HotPathAlloc)).len(), 0);
    }

    #[test]
    fn l9_fail_fixture_fires_on_reachable_allocations() {
        let f = lint_fixture("l9_fail.rs", scope_for(Lint::HotPathAlloc));
        assert_eq!(f.len(), 3, "findings: {f:?}");
        assert!(f.iter().all(|x| x.lint == Lint::HotPathAlloc));
    }

    #[test]
    fn l10_pass_fixture_is_clean() {
        assert_eq!(lint_fixture("l10_pass.rs", scope_for(Lint::PanicReach)).len(), 0);
    }

    #[test]
    fn l10_fail_fixture_fires_on_reachable_panics() {
        let f = lint_fixture("l10_fail.rs", scope_for(Lint::PanicReach));
        assert_eq!(f.len(), 3, "findings: {f:?}");
        assert!(f.iter().all(|x| x.lint == Lint::PanicReach));
    }

    #[test]
    fn l11_pass_fixture_is_clean() {
        assert_eq!(lint_fixture("l11_pass.rs", scope_for(Lint::FloatDeterminism)).len(), 0);
    }

    #[test]
    fn l11_fail_fixture_fires_on_nondeterministic_float_patterns() {
        let f = lint_fixture("l11_fail.rs", scope_for(Lint::FloatDeterminism));
        assert_eq!(f.len(), 3, "findings: {f:?}");
        assert!(f.iter().all(|x| x.lint == Lint::FloatDeterminism));
    }

    #[test]
    fn l12_pass_fixture_is_clean() {
        assert_eq!(lint_fixture("l12_pass.rs", scope_for(Lint::ErrorCoverage)).len(), 0);
    }

    #[test]
    fn l12_fail_fixture_fires_on_unbalanced_variants() {
        let f = lint_fixture("l12_fail.rs", scope_for(Lint::ErrorCoverage));
        assert_eq!(f.len(), 2, "findings: {f:?}");
        assert!(f.iter().all(|x| x.lint == Lint::ErrorCoverage));
        assert!(f.iter().any(|x| x.message.contains("never constructed")));
        assert!(f.iter().any(|x| x.message.contains("never matched")));
    }

    #[test]
    fn l13_pass_fixture_is_clean() {
        assert_eq!(lint_fixture("l13_pass.rs", scope_for(Lint::LockHeldEffects)).len(), 0);
    }

    #[test]
    fn l13_fail_fixture_fires_on_transitive_effects_under_guards() {
        let f = lint_fixture("l13_fail.rs", scope_for(Lint::LockHeldEffects));
        assert_eq!(f.len(), 2, "findings: {f:?}");
        assert!(f.iter().all(|x| x.lint == Lint::LockHeldEffects));
        assert!(f.iter().any(|x| x.message.contains("blocking effect")));
        assert!(f.iter().any(|x| x.message.contains("re-acquires")));
    }

    #[test]
    fn l13_no_alloc_locks_gate_transitive_allocation() {
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join("l13_fail.rs");
        let text = std::fs::read_to_string(&path).expect("l13 fixture");
        let src = SourceFile::parse("l13_fail.rs", text);
        let manifest =
            ConcurrencyManifest { no_alloc_locks: vec!["delta".to_string()], ..Default::default() };
        let f = lint_source_with(&src, scope_for(Lint::LockHeldEffects), &manifest);
        assert_eq!(f.len(), 3, "findings: {f:?}");
        assert!(f.iter().any(|x| x.message.contains("alloc-free")), "{f:?}");
    }

    #[test]
    fn l14_pass_fixture_is_clean() {
        assert_eq!(lint_fixture("l14_pass.rs", scope_for(Lint::DeadlineSafety)).len(), 0);
    }

    #[test]
    fn l14_fail_fixture_fires_on_unbounded_serve_waits() {
        let f = lint_fixture("l14_fail.rs", scope_for(Lint::DeadlineSafety));
        assert_eq!(f.len(), 2, "findings: {f:?}");
        assert!(f.iter().all(|x| x.lint == Lint::DeadlineSafety));
        assert!(f.iter().all(|x| x.message.contains("bounded-by")));
    }

    #[test]
    fn l15_pass_fixture_is_clean() {
        assert_eq!(lint_fixture("l15_pass.rs", scope_for(Lint::UnsafeAudit)).len(), 0);
    }

    #[test]
    fn l15_fail_fixture_fires_on_unjustified_unsafe() {
        let f = lint_fixture("l15_fail.rs", scope_for(Lint::UnsafeAudit));
        assert_eq!(f.len(), 3, "findings: {f:?}");
        assert!(f.iter().all(|x| x.lint == Lint::UnsafeAudit));
    }

    #[test]
    fn fail_fixtures_fire_under_the_full_scope_too() {
        for name in [
            "l1_fail.rs",
            "l2_fail.rs",
            "l3_fail.rs",
            "l4_fail.rs",
            "l5_fail.rs",
            "l6_fail.rs",
            "l7_fail.rs",
            "l8_fail.rs",
            "l9_fail.rs",
            "l10_fail.rs",
            "l11_fail.rs",
            "l12_fail.rs",
            "l13_fail.rs",
            "l14_fail.rs",
            "l15_fail.rs",
        ] {
            assert!(
                !lint_fixture(name, Scope::all()).is_empty(),
                "{name} should fail under Scope::all()"
            );
        }
    }
}
