//! `tg-xtask` — the workspace's static-analysis suite.
//!
//! Run as `cargo run -p tg-xtask -- lint` (text output) or
//! `cargo run -p tg-xtask -- lint --format json` (machine-readable, for
//! CI). The same entry point backs the repo's `tests/lint_gate.rs`, so
//! `cargo test` fails on any new violation.
//!
//! The analyzer is std-only and source-level: the build environment has no
//! registry access, and a lint gate must never be the part of the build
//! that breaks. See [`rules`] for what each lint enforces and
//! [`source`] for the lexical model that keeps patterns from matching
//! inside comments, strings, or `#[cfg(test)]` items.

pub mod report;
pub mod rules;
pub mod source;

pub use report::{render_json, render_text};
pub use rules::{lint_source, Finding, Lint, Scope};
pub use source::SourceFile;

use std::io;
use std::path::Path;

/// Crates whose `src/` trees are subject to L1 (no-panic) and L2
/// (lossy-cast) — the library crates on the inference path. `tg-bench` is
/// a harness (panicking with context is its job) and `tg-xtask` analyzes
/// rather than serves, so neither is listed.
pub const LIBRARY_CRATES: &[&str] = &[
    "crates/tensor",
    "crates/tgraph",
    "crates/tgat",
    "crates/core",
    "crates/datasets",
    "crates/serve",
];

/// Hot-path files where SipHash maps are banned (L3): the §4 memoization,
/// dedup, and time-encode caches, their key packing, and their snapshot
/// codec.
pub const HOT_HASH_FILES: &[&str] = &[
    "crates/core/src/cache.rs",
    "crates/core/src/dedup.rs",
    "crates/core/src/timecache.rs",
    "crates/core/src/hash.rs",
    "crates/core/src/persist.rs",
];

/// Files holding shared cache state whose public mutators must document
/// `# Invariants` (L4).
pub const CACHE_STATE_FILES: &[&str] = &[
    "crates/core/src/cache.rs",
    "crates/core/src/timecache.rs",
    "crates/core/src/persist.rs",
    "crates/serve/src/queue.rs",
    "crates/serve/src/stats.rs",
];

/// Outcome of a whole-workspace lint run.
#[derive(Clone, Debug)]
pub struct LintReport {
    pub findings: Vec<Finding>,
    pub files_checked: usize,
}

impl LintReport {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Lints every in-scope `.rs` file under `root` (the workspace root).
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut findings = Vec::new();
    let mut files_checked = 0usize;
    for krate in LIBRARY_CRATES {
        let src_dir = root.join(krate).join("src");
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        for path in files {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let text = std::fs::read_to_string(&path)?;
            let scope = Scope {
                panic: true,
                lossy_cast: true,
                std_hash: HOT_HASH_FILES.contains(&rel.as_str()),
                invariants: CACHE_STATE_FILES.contains(&rel.as_str()),
            };
            let src = SourceFile::parse(rel, text);
            findings.extend(lint_source(&src, scope));
            files_checked += 1;
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(LintReport { findings, files_checked })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            // `src/bin` targets are CLI surface, not library code.
            if path.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod fixture_tests {
    //! Self-tests over `fixtures/`: one passing and one violating example
    //! per lint. The fail fixtures also pin *which* lines fire, so a rule
    //! that silently widens or narrows its matching breaks the build.

    use super::*;

    fn lint_fixture(name: &str, scope: Scope) -> Vec<Finding> {
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
        lint_source(&SourceFile::parse(name, text), scope)
    }

    fn scope_for(lint: Lint) -> Scope {
        Scope {
            panic: lint == Lint::Panic,
            lossy_cast: lint == Lint::LossyCast,
            std_hash: lint == Lint::StdHash,
            invariants: lint == Lint::MissingInvariants,
        }
    }

    #[test]
    fn l1_pass_fixture_is_clean() {
        assert_eq!(lint_fixture("l1_pass.rs", scope_for(Lint::Panic)).len(), 0);
    }

    #[test]
    fn l1_fail_fixture_fires_once_per_panic_site() {
        let f = lint_fixture("l1_fail.rs", scope_for(Lint::Panic));
        assert_eq!(f.len(), 4, "findings: {f:?}");
        assert!(f.iter().all(|x| x.lint == Lint::Panic));
    }

    #[test]
    fn l2_pass_fixture_is_clean() {
        assert_eq!(lint_fixture("l2_pass.rs", scope_for(Lint::LossyCast)).len(), 0);
    }

    #[test]
    fn l2_fail_fixture_fires_on_each_narrowing_cast() {
        let f = lint_fixture("l2_fail.rs", scope_for(Lint::LossyCast));
        assert_eq!(f.len(), 4, "findings: {f:?}");
        assert!(f.iter().all(|x| x.lint == Lint::LossyCast));
    }

    #[test]
    fn l3_pass_fixture_is_clean() {
        assert_eq!(lint_fixture("l3_pass.rs", scope_for(Lint::StdHash)).len(), 0);
    }

    #[test]
    fn l3_fail_fixture_fires_on_std_maps() {
        let f = lint_fixture("l3_fail.rs", scope_for(Lint::StdHash));
        assert_eq!(f.len(), 2, "findings: {f:?}");
        assert!(f.iter().all(|x| x.lint == Lint::StdHash));
    }

    #[test]
    fn l4_pass_fixture_is_clean() {
        assert_eq!(lint_fixture("l4_pass.rs", scope_for(Lint::MissingInvariants)).len(), 0);
    }

    #[test]
    fn l4_fail_fixture_fires_on_undocumented_mutators() {
        let f = lint_fixture("l4_fail.rs", scope_for(Lint::MissingInvariants));
        assert_eq!(f.len(), 2, "findings: {f:?}");
        assert!(f.iter().all(|x| x.lint == Lint::MissingInvariants));
    }

    #[test]
    fn fail_fixtures_fire_under_the_full_scope_too() {
        for name in ["l1_fail.rs", "l2_fail.rs", "l3_fail.rs", "l4_fail.rs"] {
            assert!(
                !lint_fixture(name, Scope::all()).is_empty(),
                "{name} should fail under Scope::all()"
            );
        }
    }
}
