//! Lightweight intra-function scope/CFG walk for the concurrency rules.
//!
//! The walker scans each `fn` body in a file's code view (comments and
//! strings already blanked by [`crate::source`]) and reconstructs the one
//! fact the L5 (lock-order) and L7 (lock-across-expensive-call) rules
//! need: **which lock guards are live at each point**. Guard liveness
//! follows Rust's drop rules closely enough for linting:
//!
//! * `let g = ...lock();` binds a guard that lives until its enclosing
//!   block closes or an explicit `drop(g)`.
//! * A lock call that is *not* the final value of a `let` statement (a
//!   `*deref` copy, a chained call like `x.lock().unwrap_len()`, a bare
//!   expression statement) produces a temporary guard held to the end of
//!   the statement.
//!
//! Lock acquisitions are the no-argument guard constructors `.lock()`,
//! `.read()`, and `.write()` — the shared `std::sync`/`parking_lot` API
//! surface. A lock's *name* is the last path segment of its receiver
//! (`self.shards[i].write()` → `shards`), which is how the canonical
//! order in `concurrency.toml` refers to it.

use crate::source::SourceFile;

/// A lock-guard constructor call.
const LOCK_CALLS: &[&str] = &[".lock()", ".read()", ".write()"];

// The L7 expensive-call table lives in `rules/calls.rs` with the other
// shared call classifications; re-exported here because this is where it
// historically lived and external callers use the `scopes::` path.
pub use crate::rules::calls::EXPENSIVE_CALLS;

/// One event observed during the walk of a function body, in source order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A lock acquisition. `held` is every distinct lock name already
    /// guarded at this point (binding line attached for diagnostics).
    Acquire { lock: String, line: usize, held: Vec<(String, usize)> },
    /// An expensive call executed while at least one guard is live.
    Expensive { call: String, line: usize, held: Vec<(String, usize)> },
}

/// A byte range of the code view during which at least one lock guard is
/// live. The effect engine (L13 `lock-held-effects`) intersects call and
/// allocation *sites* with these ranges — reusing the call-graph's own
/// site detection rather than re-implementing it here, so the two can
/// never disagree about what counts as a call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Region {
    /// Start byte (first byte at which the held set below is live).
    pub start: usize,
    /// Past-the-end byte.
    pub end: usize,
    /// Distinct held lock names with their acquisition lines, outermost
    /// first.
    pub held: Vec<(String, usize)>,
}

/// The walked events of one `fn`.
#[derive(Clone, Debug)]
pub struct FnScope {
    /// Function name (empty for closures promoted to items — not expected).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Body byte span in the code view, `[open, close]` braces inclusive.
    pub body: (usize, usize),
    /// Acquisition / expensive-call events in source order.
    pub events: Vec<Event>,
    /// Guard-liveness byte ranges (non-empty held sets only), in order.
    pub regions: Vec<Region>,
}

/// A live guard during the walk.
struct Guard {
    /// Binding name (`None` for statement temporaries).
    binding: Option<String>,
    /// Lock name (receiver's last path segment).
    lock: String,
    /// Brace depth the guard was created at.
    depth: usize,
    /// True for statement temporaries (die at the next `;`/`{`).
    temp: bool,
    /// 1-based acquisition line.
    line: usize,
}

/// Walks every function body in the file.
pub fn analyze_fns(src: &SourceFile) -> Vec<FnScope> {
    let code = &src.code;
    let bytes = code.as_bytes();
    let mut out: Vec<FnScope> = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find("fn ") {
        let at = from + pos;
        from = at + 3;
        // Word boundary on the left (`pub fn` yes, `extern_fn ` no).
        if at > 0 && (bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_') {
            continue;
        }
        // Skip nested fns — their body is already walked with the parent's.
        if out.iter().any(|f| at > f.body.0 && at < f.body.1) {
            continue;
        }
        let name: String = code[at + 3..]
            .bytes()
            .take_while(|&b| b.is_ascii_alphanumeric() || b == b'_')
            .map(char::from)
            .collect();
        let Some((open, close)) = body_span(bytes, at) else { continue };
        let (events, regions) = walk_body(src, open, close);
        out.push(FnScope { name, line: src.line_of(at), body: (open, close), events, regions });
    }
    out
}

/// Finds the `{` opening the body of the fn at `at` (skipping the
/// signature, which may contain `;`-free generic/array tokens) and its
/// matching `}`. Returns `None` for bodyless trait declarations.
fn body_span(bytes: &[u8], at: usize) -> Option<(usize, usize)> {
    let mut nest = 0i32;
    let mut open = None;
    for (j, &b) in bytes[at..].iter().enumerate() {
        match b {
            b'(' | b'[' | b'<' => nest += 1,
            b')' | b']' | b'>' => nest -= 1,
            b'{' => {
                open = Some(at + j);
                break;
            }
            b';' if nest <= 0 => return None,
            _ => {}
        }
    }
    let open = open?;
    let mut depth = 0usize;
    for (j, &b) in bytes[open..].iter().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, open + j));
                }
            }
            _ => {}
        }
    }
    Some((open, bytes.len().saturating_sub(1)))
}

/// Linear walk of one body span, producing events and guard-liveness
/// regions in order.
fn walk_body(src: &SourceFile, open: usize, close: usize) -> (Vec<Event>, Vec<Region>) {
    let code = &src.code;
    let bytes = code.as_bytes();
    let mut events = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut regions: Vec<Region> = Vec::new();
    let mut cur_held: Vec<(String, usize)> = Vec::new();
    let mut cur_start = open;
    let mut depth = 0usize;
    let mut stmt_start = open;
    let mut i = open;
    while i <= close {
        match bytes[i] {
            b'{' => {
                depth += 1;
                // A `{` ends the scrutinee/initializer expression: any
                // statement temporary has done its job for L7 purposes.
                guards.retain(|g| !g.temp);
                sync_regions(&mut regions, &mut cur_held, &mut cur_start, &guards, i);
                stmt_start = i + 1;
            }
            b'}' => {
                guards.retain(|g| g.depth < depth);
                sync_regions(&mut regions, &mut cur_held, &mut cur_start, &guards, i);
                depth = depth.saturating_sub(1);
                stmt_start = i + 1;
            }
            b';' => {
                guards.retain(|g| !g.temp);
                sync_regions(&mut regions, &mut cur_held, &mut cur_start, &guards, i);
                stmt_start = i + 1;
            }
            b'd' if code[i..].starts_with("drop(")
                && (i == 0 || !(bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_')) =>
            {
                let target: String = code[i + 5..]
                    .bytes()
                    .take_while(|&b| b.is_ascii_alphanumeric() || b == b'_')
                    .map(char::from)
                    .collect();
                guards.retain(|g| g.binding.as_deref() != Some(target.as_str()));
                sync_regions(&mut regions, &mut cur_held, &mut cur_start, &guards, i);
            }
            b'.' => {
                if let Some(call) = LOCK_CALLS.iter().find(|c| code[i..].starts_with(**c)) {
                    let lock = receiver_name(code, i);
                    let line = src.line_of(i);
                    let held: Vec<(String, usize)> = distinct_held(&guards);
                    events.push(Event::Acquire { lock: lock.clone(), line, held });
                    let stmt = &code[stmt_start..i];
                    let (binding, temp) = classify_binding(stmt, code, i + call.len(), close);
                    guards.push(Guard { binding, lock, depth, temp, line });
                    // The new guard is live from the byte after its
                    // constructor — a wrapper receiving the guard
                    // (`relock(x.lock())`) is not "under" it.
                    i += call.len();
                    sync_regions(&mut regions, &mut cur_held, &mut cur_start, &guards, i);
                    continue;
                }
                if let Some(call) = expensive_at(code, i) {
                    push_expensive(src, &guards, call, i, &mut events);
                }
            }
            _ => {
                if let Some(call) = expensive_at(code, i) {
                    // Word boundary for non-`.`-prefixed patterns.
                    if i == 0 || !(bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
                        push_expensive(src, &guards, call, i, &mut events);
                    }
                }
            }
        }
        i += 1;
    }
    sync_regions(&mut regions, &mut cur_held, &mut cur_start, &[], close + 1);
    (events, regions)
}

/// Closes the open guard-liveness region (if any) when the distinct held
/// set changes at byte `at`, and opens the next one.
fn sync_regions(
    regions: &mut Vec<Region>,
    cur_held: &mut Vec<(String, usize)>,
    cur_start: &mut usize,
    guards: &[Guard],
    at: usize,
) {
    let held = distinct_held(guards);
    if held == *cur_held {
        return;
    }
    if !cur_held.is_empty() && at > *cur_start {
        regions.push(Region { start: *cur_start, end: at, held: std::mem::take(cur_held) });
    }
    *cur_held = held;
    *cur_start = at;
}

fn expensive_at(code: &str, i: usize) -> Option<&'static str> {
    EXPENSIVE_CALLS.iter().copied().find(|c| code[i..].starts_with(*c))
}

fn push_expensive(
    src: &SourceFile,
    guards: &[Guard],
    call: &'static str,
    at: usize,
    events: &mut Vec<Event>,
) {
    if guards.is_empty() {
        return;
    }
    events.push(Event::Expensive {
        call: call.trim_end_matches("()").trim_end_matches('(').to_string(),
        line: src.line_of(at),
        held: distinct_held(guards),
    });
}

fn distinct_held(guards: &[Guard]) -> Vec<(String, usize)> {
    let mut held: Vec<(String, usize)> = Vec::new();
    for g in guards {
        if !held.iter().any(|(l, _)| *l == g.lock) {
            held.push((g.lock.clone(), g.line));
        }
    }
    held
}

/// Decides whether the lock call at the end of `stmt` (so far) binds a
/// long-lived guard or a statement temporary.
///
/// Bound means: the statement is a `let`, the initializer is not a
/// dereferencing copy (`let x = *a.lock();` drops the guard at the `;`),
/// and nothing but closing parens follows the lock call before the `;` —
/// a chained call (`a.lock().pop()`) means the *result of the chain*, not
/// the guard, is bound.
fn classify_binding(
    stmt: &str,
    code: &str,
    after_call: usize,
    close: usize,
) -> (Option<String>, bool) {
    let trimmed = stmt.trim_start();
    if !trimmed.starts_with("let ") {
        return (None, true);
    }
    let Some(eq) = trimmed.find('=') else { return (None, true) };
    let init = trimmed[eq + 1..].trim_start();
    if init.starts_with('*') || init.starts_with("match ") || init.starts_with("if ") {
        return (None, true);
    }
    // Tail after the lock call: only `)` closers and whitespace may appear
    // before the terminating `;` for the guard itself to be what's bound.
    for b in code.as_bytes()[after_call..=close].iter() {
        match b {
            b')' | b' ' | b'\t' | b'\n' => continue,
            b';' => break,
            _ => return (None, true),
        }
    }
    let mut name = trimmed[4..eq].trim();
    name = name.strip_prefix("mut ").unwrap_or(name).trim();
    // Pattern bindings (`let (a, b) = ...`) never bind a bare guard.
    if name.is_empty() || !name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_') {
        return (None, true);
    }
    (Some(name.to_string()), false)
}

/// Last path segment of the receiver ending just before the `.` at `dot`:
/// walks back over identifier segments, `.` separators, and balanced
/// `[...]`/`(...)` groups. `self.shards[shard_of(k)].write()` → `shards`.
pub(crate) fn receiver_name(code: &str, dot: usize) -> String {
    let bytes = code.as_bytes();
    let mut i = dot;
    let mut last_segment = String::new();
    while i > 0 {
        let b = bytes[i - 1];
        match b {
            b']' | b')' => {
                let open = if b == b']' { b'[' } else { b'(' };
                let mut depth = 1usize;
                i -= 1;
                while i > 0 && depth > 0 {
                    i -= 1;
                    if bytes[i] == b {
                        depth += 1;
                    } else if bytes[i] == open {
                        depth -= 1;
                    }
                }
                // An index/call group is part of the receiver but never its
                // name; keep walking toward the segment before it.
            }
            _ if b.is_ascii_alphanumeric() || b == b'_' => {
                let end = i;
                while i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
                    i -= 1;
                }
                if last_segment.is_empty() {
                    last_segment = code[i..end].to_string();
                } else {
                    // Already have the last segment; earlier segments only
                    // matter to keep consuming the path.
                }
                // Stop unless a `.` continues the path leftward.
                if i == 0 || bytes[i - 1] != b'.' {
                    break;
                }
            }
            b'.' => i -= 1,
            _ => break,
        }
    }
    last_segment
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(src: &str) -> Vec<Event> {
        let f = SourceFile::parse("t.rs", src);
        analyze_fns(&f).into_iter().flat_map(|s| s.events).collect()
    }

    #[test]
    fn bound_guard_is_held_until_block_end() {
        let src = "fn f(&self) {\n    let g = self.fifo.lock();\n    let s = self.shards[0].write();\n}\n";
        let ev = events(src);
        assert_eq!(ev.len(), 2);
        match &ev[1] {
            Event::Acquire { lock, held, .. } => {
                assert_eq!(lock, "shards");
                assert_eq!(held.len(), 1);
                assert_eq!(held[0].0, "fifo");
            }
            other => panic!("expected Acquire, got {other:?}"),
        }
    }

    #[test]
    fn inner_block_guard_dies_at_block_close() {
        let src = "fn f(&self) {\n    {\n        let g = self.fifo.lock();\n    }\n    let s = self.state.lock();\n}\n";
        let ev = events(src);
        match &ev[1] {
            Event::Acquire { lock, held, .. } => {
                assert_eq!(lock, "state");
                assert!(held.is_empty(), "fifo guard must be dead: {held:?}");
            }
            other => panic!("expected Acquire, got {other:?}"),
        }
    }

    #[test]
    fn explicit_drop_releases_the_guard() {
        let src = "fn f(&self) {\n    let g = self.a.lock();\n    drop(g);\n    let h = self.b.lock();\n}\n";
        let ev = events(src);
        match &ev[1] {
            Event::Acquire { held, .. } => assert!(held.is_empty()),
            other => panic!("expected Acquire, got {other:?}"),
        }
    }

    #[test]
    fn deref_copy_is_a_statement_temporary() {
        let src = "fn f(&self) {\n    let c = *self.counters.lock();\n    self.engine.embed_batch(&c);\n}\n";
        let ev = events(src);
        assert_eq!(ev.len(), 1, "no Expensive event once the temp died: {ev:?}");
    }

    #[test]
    fn chained_call_holds_a_temporary_through_the_statement() {
        let src = "fn f(&self) {\n    let wave = match relock(rx.lock()).recv() { Ok(w) => w, Err(_) => return };\n}\n";
        let ev = events(src);
        assert!(
            ev.iter().any(|e| matches!(
                e,
                Event::Expensive { call, held, .. }
                    if call == ".recv" && held.iter().any(|(l, _)| l == "rx")
            )),
            "recv under rx guard must be seen: {ev:?}"
        );
    }

    #[test]
    fn expensive_call_under_bound_guard_is_reported() {
        let src = "fn f(&self) {\n    let g = self.cache.lock();\n    let h = engine.embed_batch(&ns, &ts);\n}\n";
        let ev = events(src);
        assert!(ev.iter().any(|e| matches!(
            e,
            Event::Expensive { call, .. } if call == "embed_batch"
        )));
    }

    #[test]
    fn indexed_receiver_names_the_field() {
        let src = "fn f(&self) {\n    let s = self.shards[shard_of(key)].read();\n}\n";
        let ev = events(src);
        match &ev[0] {
            Event::Acquire { lock, .. } => assert_eq!(lock, "shards"),
            other => panic!("expected Acquire, got {other:?}"),
        }
    }

    #[test]
    fn guarded_regions_cover_bound_guard_lifetimes() {
        let src = "fn f(&self) {\n    let g = self.fifo.lock();\n    self.work();\n}\n";
        let f = SourceFile::parse("t.rs", src);
        let scopes = analyze_fns(&f);
        let regions = &scopes[0].regions;
        assert_eq!(regions.len(), 1, "{regions:?}");
        assert_eq!(regions[0].held, vec![("fifo".to_string(), 2)]);
        let work = src.find("self.work").unwrap();
        assert!(regions[0].start < work && work < regions[0].end);
        // The lock constructor itself is *before* the region.
        let lock_at = src.find(".lock()").unwrap();
        assert!(regions[0].start >= lock_at + ".lock()".len());
    }

    #[test]
    fn guarded_regions_end_at_drop_and_temp_statement_end() {
        let src = "fn f(&self) {\n    let g = self.a.lock();\n    drop(g);\n    self.after_drop();\n    relock(self.b.lock()).touch(x);\n    self.after_stmt();\n}\n";
        let f = SourceFile::parse("t.rs", src);
        let regions = analyze_fns(&f).remove(0).regions;
        assert_eq!(regions.len(), 2, "{regions:?}");
        let after_drop = src.find("self.after_drop").unwrap();
        let touch = src.find(".touch").unwrap();
        let after_stmt = src.find("self.after_stmt").unwrap();
        // `a` region closes before the code after drop(g).
        assert_eq!(regions[0].held[0].0, "a");
        assert!(regions[0].end <= after_drop);
        // The temp `b` guard covers the chained `.touch(` call but dies at
        // the statement's `;`.
        assert_eq!(regions[1].held[0].0, "b");
        assert!(regions[1].start < touch && touch < regions[1].end);
        assert!(regions[1].end <= after_stmt);
    }

    #[test]
    fn nested_guard_regions_track_the_distinct_held_set() {
        let src = "fn f(&self) {\n    let g = self.gen.read();\n    {\n        let d = self.delta.write();\n        self.inner();\n    }\n    self.outer();\n}\n";
        let f = SourceFile::parse("t.rs", src);
        let regions = analyze_fns(&f).remove(0).regions;
        let inner = src.find("self.inner").unwrap();
        let outer = src.find("self.outer").unwrap();
        let both = regions
            .iter()
            .find(|r| r.start < inner && inner < r.end)
            .expect("inner call must be covered");
        assert_eq!(
            both.held.iter().map(|(l, _)| l.as_str()).collect::<Vec<_>>(),
            vec!["gen", "delta"]
        );
        let only_gen = regions
            .iter()
            .find(|r| r.start < outer && outer < r.end)
            .expect("outer call must be covered");
        assert_eq!(only_gen.held.iter().map(|(l, _)| l.as_str()).collect::<Vec<_>>(), vec!["gen"]);
    }

    #[test]
    fn condvar_wait_is_not_expensive() {
        let src = "fn f(&self) {\n    let mut st = self.state.lock();\n    st = self.arrived.wait(st);\n}\n";
        let ev = events(src);
        assert_eq!(ev.len(), 1, "only the acquisition: {ev:?}");
    }
}
