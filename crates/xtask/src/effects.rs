//! Interprocedural effect inference: the engine behind L9/L10 (now
//! summary-derived), L13 (`lock-held-effects`), L14 (`deadline-safety`),
//! and L16 (`effects-drift`).
//!
//! Where [`crate::callgraph`] answers the per-root reachability question
//! ("can a hot root reach an allocation?"), this module computes, for
//! *every* workspace function, a transitive **effect summary** — the set
//! of [`Effect`]s that executing the function may have:
//!
//! * `Alloc` — heap allocation ([`ALLOC_CALLS`]), minus sites justified
//!   by `// alloc-ok:` / `allow(hot-path-alloc)` and `#[cfg(test)]` code.
//! * `Panic` — panicking constructs ([`PANIC_PATTERNS`] plus non-literal
//!   slice indexing in `crates/serve/`), minus `allow(panic-reach)` sites.
//! * `Blocking(kind)` — unbounded-wait constructs ([`BLOCKING_CALLS`]):
//!   channel `recv`, thread `join`, `sleep`, file I/O, `.await`.
//! * `LockAcquire(name)` — a guard constructor on the named lock (the
//!   same receiver-derived names `concurrency.toml` uses).
//! * `FloatNondet` — an unsuppressed L11 float-determinism site.
//! * `RelaxedAtomic` — an unsuppressed `Ordering::Relaxed` use.
//!
//! ## Summary computation
//!
//! Summaries are a fixpoint over the call graph: `summary(f) =
//! direct(f) ∪ ⋃ summary(callees of f)`. Recursion (including mutual
//! recursion) is handled by condensing the graph into strongly connected
//! components (iterative Tarjan) and propagating over the condensation in
//! reverse topological order — every member of an SCC gets the union of
//! the whole component, which *is* the least fixpoint. Calls to
//! `// cold-path:` functions contribute nothing, mirroring the closure
//! pruning the BFS lints have always done.
//!
//! Suppressed sites are excluded from summaries on purpose: an effect
//! that has been justified in place is not part of a function's *policy-
//! relevant* effect surface. This is what makes L16 sharp — deleting an
//! `// alloc-ok:` annotation adds `Alloc` back into the enclosing root's
//! summary, and the committed `effects.lock` no longer matches.
//!
//! ## The lints
//!
//! * **L9/L10** ([`EffectEngine::lint_hot_path_alloc`] /
//!   [`EffectEngine::lint_panic_reach`]) — same findings as the BFS
//!   reference twins in [`crate::callgraph`], byte-for-byte (pinned by an
//!   equivalence test in `tests/lint_gate.rs`), now emitted from the
//!   engine's shared site extraction.
//! * **L13** ([`EffectEngine::lint_lock_held`]) — the interprocedural
//!   L7: no call with a transitive `Blocking`/`LockAcquire`/`Alloc`
//!   effect while a guard is live (lock acquisitions checked against the
//!   canonical order; `Alloc` only under locks listed in `[lock-held]
//!   no_alloc` in `concurrency.toml`).
//! * **L14** ([`EffectEngine::lint_deadline`]) — nothing reachable from a
//!   serve root may block without a bound: unbounded `Blocking` sites
//!   need `// bounded-by: <reason>` (timed variants are auto-bounded).
//! * **L16** ([`check_drift`]) — hot-path-root summaries are serialized
//!   to a committed `effects.lock`; any change fails lint until the lock
//!   is deliberately regenerated via `UPDATE_EFFECTS_LOCK=1`.

use std::collections::BTreeSet;

use crate::callgraph::{self, CallGraph, Resolver};
use crate::manifest::ConcurrencyManifest;
use crate::rules::calls::{ALLOC_CALLS, BLOCKING_CALLS, PANIC_PATTERNS};
use crate::rules::{bounded_matches, determinism, Finding, Lint};
use crate::scopes::{analyze_fns, Region};
use crate::source::{RootKind, SourceFile};

/// File name of the committed lock at the workspace root.
pub const LOCK_NAME: &str = "effects.lock";

/// One element of a function's effect summary. The derived `Ord` gives
/// summaries (and therefore `effects.lock`) a stable serialization order.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Effect {
    /// Heap allocation.
    Alloc,
    /// A panicking construct.
    Panic,
    /// An unbounded-wait construct, tagged `recv`/`join`/`sleep`/
    /// `file-io`/`await`.
    Blocking(String),
    /// A guard constructor on the named lock.
    LockAcquire(String),
    /// An L11 float-nondeterminism site.
    FloatNondet,
    /// An `Ordering::Relaxed` use.
    RelaxedAtomic,
}

impl Effect {
    /// Stable text form used in `effects.lock` and the JSON artifact.
    pub fn display(&self) -> String {
        match self {
            Effect::Alloc => "alloc".to_string(),
            Effect::Panic => "panic".to_string(),
            Effect::Blocking(k) => format!("blocking({k})"),
            Effect::LockAcquire(l) => format!("lock({l})"),
            Effect::FloatNondet => "float-nondet".to_string(),
            Effect::RelaxedAtomic => "relaxed-atomic".to_string(),
        }
    }

    /// Inverse of [`Effect::display`], for parsing `effects.lock`.
    pub fn parse(text: &str) -> Option<Effect> {
        match text {
            "alloc" => Some(Effect::Alloc),
            "panic" => Some(Effect::Panic),
            "float-nondet" => Some(Effect::FloatNondet),
            "relaxed-atomic" => Some(Effect::RelaxedAtomic),
            _ => {
                let inner = |p: &str| {
                    text.strip_prefix(p).and_then(|r| r.strip_suffix(')')).map(str::to_string)
                };
                if let Some(k) = inner("blocking(") {
                    Some(Effect::Blocking(k))
                } else {
                    inner("lock(").map(Effect::LockAcquire)
                }
            }
        }
    }
}

/// One direct (non-transitive) effect site inside a function body.
#[derive(Clone, Debug)]
pub struct EffectSite {
    pub effect: Effect,
    /// Byte offset in the file's code view (0 when only a line is known —
    /// lock acquisitions and float-nondeterminism sites).
    pub at: usize,
    /// 1-based line.
    pub line: usize,
    /// Display text for findings: the alloc rationale, the trimmed panic
    /// or blocking pattern, or the lock name.
    pub what: String,
    /// `Blocking` only: the wait bounds itself (`recv_timeout`, `sleep`)
    /// or carries a `// bounded-by: <reason>` annotation.
    pub bounded: bool,
}

/// A hot-path root's transitive summary, as serialized to `effects.lock`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RootSummary {
    pub file: String,
    pub line: usize,
    pub label: String,
    pub kind: RootKind,
    pub effects: BTreeSet<Effect>,
}

fn kind_str(kind: RootKind) -> &'static str {
    match kind {
        RootKind::Both => "both",
        RootKind::Alloc => "alloc",
        RootKind::Serve => "serve",
    }
}

fn kind_parse(text: &str) -> Option<RootKind> {
    match text {
        "both" => Some(RootKind::Both),
        "alloc" => Some(RootKind::Alloc),
        "serve" => Some(RootKind::Serve),
        _ => None,
    }
}

/// The effect-inference engine: a call graph plus per-function direct
/// sites, guard-liveness regions, and fixpoint summaries.
pub struct EffectEngine<'a> {
    pub graph: CallGraph<'a>,
    /// Per node: direct effect sites, suppression-aware, in the same
    /// deterministic order the BFS lints enumerate them.
    sites: Vec<Vec<EffectSite>>,
    /// Per node: transitive summary (direct ∪ non-cold callees).
    summaries: Vec<BTreeSet<Effect>>,
    /// Per node: byte ranges where a lock guard is live.
    regions: Vec<Vec<Region>>,
}

impl<'a> EffectEngine<'a> {
    pub fn build(sources: &'a [SourceFile]) -> Self {
        let graph = CallGraph::build(sources);
        let n = graph.nodes.len();

        // Guard-liveness regions and lock acquisitions come from the scope
        // walker; re-walk each file once and match scopes to graph nodes by
        // body span (CallGraph::build created its nodes from the same walk,
        // so every node has exactly one matching scope).
        use std::collections::BTreeMap;
        let mut scope_data: BTreeMap<(usize, usize), (Vec<Region>, Vec<(String, usize)>)> =
            BTreeMap::new();
        for (file, src) in sources.iter().enumerate() {
            for scope in analyze_fns(src) {
                let acquires: Vec<(String, usize)> = scope
                    .events
                    .iter()
                    .filter_map(|e| match e {
                        crate::scopes::Event::Acquire { lock, line, .. } => {
                            Some((lock.clone(), *line))
                        }
                        _ => None,
                    })
                    .collect();
                scope_data.insert((file, scope.body.0), (scope.regions, acquires));
            }
        }
        // L11 sites per file, bucketed into nodes by line below.
        let mut nondet_lines: Vec<Vec<usize>> = Vec::with_capacity(sources.len());
        for src in sources {
            let mut v = Vec::new();
            determinism::lint_float_determinism(src, &mut v);
            nondet_lines.push(v.into_iter().map(|f| f.line).collect());
        }

        let mut sites: Vec<Vec<EffectSite>> = Vec::with_capacity(n);
        let mut regions: Vec<Vec<Region>> = Vec::with_capacity(n);
        for node in &graph.nodes {
            let src = &sources[node.file];
            let (node_regions, acquires) = scope_data
                .get(&(node.file, node.body.0))
                .cloned()
                .unwrap_or_default();
            sites.push(direct_sites(src, node, &acquires, &nondet_lines[node.file]));
            regions.push(node_regions);
        }

        let summaries = compute_summaries(&graph, &sites);
        Self { graph, sites, summaries, regions }
    }

    /// The transitive effect summary of node `i`.
    pub fn summary(&self, i: usize) -> &BTreeSet<Effect> {
        &self.summaries[i]
    }

    /// Direct effect sites of node `i`.
    pub fn sites(&self, i: usize) -> &[EffectSite] {
        &self.sites[i]
    }

    /// **L9 `hot-path-alloc`** — the engine's `Alloc` sites of every
    /// function reachable from an alloc root. Byte-identical to
    /// [`CallGraph::lint_hot_path_alloc_bfs`]: same site extraction, same
    /// closure, same witness chains.
    pub fn lint_hot_path_alloc(&self) -> Vec<Finding> {
        let parent = self.graph.reachable(RootKind::seeds_alloc);
        let mut out = Vec::new();
        for (i, node) in self.graph.nodes.iter().enumerate() {
            if parent[i].is_none() {
                continue;
            }
            let src = &self.graph.sources[node.file];
            for site in &self.sites[i] {
                if site.effect != Effect::Alloc {
                    continue;
                }
                out.push(Finding {
                    lint: Lint::HotPathAlloc,
                    file: src.path.clone(),
                    line: site.line,
                    message: format!(
                        "{}; on the hot path `{}`; \
                         annotate `// alloc-ok: <reason>` if intended",
                        site.what,
                        self.graph.witness(&parent, i)
                    ),
                });
            }
        }
        out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        out.dedup();
        out
    }

    /// **L10 `panic-reach`** — the engine's `Panic` sites of every
    /// function reachable from a serve root. Byte-identical to
    /// [`CallGraph::lint_panic_reach_bfs`].
    pub fn lint_panic_reach(&self) -> Vec<Finding> {
        let parent = self.graph.reachable(RootKind::seeds_serve);
        let mut out = Vec::new();
        for (i, node) in self.graph.nodes.iter().enumerate() {
            if parent[i].is_none() {
                continue;
            }
            let src = &self.graph.sources[node.file];
            for site in &self.sites[i] {
                if site.effect != Effect::Panic {
                    continue;
                }
                out.push(Finding {
                    lint: Lint::PanicReach,
                    file: src.path.clone(),
                    line: site.line,
                    message: format!(
                        "`{}` can panic and is reachable from the serve path `{}`; \
                         return a `TgError` instead",
                        site.what,
                        self.graph.witness(&parent, i)
                    ),
                });
            }
        }
        out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        out.dedup();
        out
    }

    /// **L13 `lock-held-effects`** — flags every call made while a guard
    /// is live whose callee summary contains:
    ///
    /// * `Blocking(_)` — the interprocedural version of L7 (L7 itself only
    ///   sees the blocking construct spelled directly under the guard);
    /// * `LockAcquire(held)` — a transitive re-acquisition of the held
    ///   lock (deadlock on non-reentrant locks);
    /// * `LockAcquire(l)` where the canonical order in `concurrency.toml`
    ///   puts `l` *before* the held lock — an interprocedural order
    ///   contradiction L5 cannot see;
    /// * `Alloc` — only when the held lock is listed in `[lock-held]
    ///   no_alloc`; plus *direct* allocation sites inside the guarded
    ///   region of this very function.
    ///
    /// Escape hatch: `// lint: allow(lock-held-effects, <reason>)` on the
    /// call (or allocation) line, or alone on the line above when the call
    /// line is too long to carry it.
    pub fn lint_lock_held(&self, manifest: &ConcurrencyManifest) -> Vec<Finding> {
        let resolver = Resolver::new(&self.graph.nodes);
        let mut out = Vec::new();
        for (i, node) in self.graph.nodes.iter().enumerate() {
            if self.regions[i].is_empty() {
                continue;
            }
            let src = &self.graph.sources[node.file];
            let calls = callgraph::call_sites(src, node.body);
            for region in &self.regions[i] {
                // A guard acquired inside #[cfg(test)] code is the test
                // harness's business.
                if region.held.iter().all(|(_, l)| src.is_test_line(*l)) {
                    continue;
                }
                for (kind, name, at) in &calls {
                    if *at < region.start || *at >= region.end {
                        continue;
                    }
                    let line = src.line_of(*at);
                    if src.is_test_line(line)
                        || allow_covers(src, line, Lint::LockHeldEffects.name())
                    {
                        continue;
                    }
                    let Some(targets) = resolver.targets(node, kind, name) else { continue };
                    // Recursive self-calls are excluded: a guard held while
                    // re-entering the same fn is the fn's own region to
                    // analyze, not a cross-function effect.
                    let targets: Vec<usize> = targets.iter().copied().filter(|&t| t != i).collect();
                    let mut combined: BTreeSet<Effect> = BTreeSet::new();
                    for &t in &targets {
                        combined.extend(self.summaries[t].iter().cloned());
                    }
                    let chain_for = |eff: &Effect| self.provider_chain(&targets, eff);
                    for (g, gline) in &region.held {
                        for eff in &combined {
                            let message = match eff {
                                Effect::Blocking(k) => format!(
                                    "`{name}` has a transitive blocking effect ({k} wait) \
                                     while the `{g}` guard (acquired line {gline}) is held; \
                                     effect chain `{}`; hoist the call out of the critical \
                                     section",
                                    chain_for(eff)
                                ),
                                Effect::LockAcquire(l) if l == g => format!(
                                    "`{name}` transitively re-acquires the `{g}` lock \
                                     already held (acquired line {gline}); effect chain \
                                     `{}`; this deadlocks on non-reentrant locks",
                                    chain_for(eff)
                                ),
                                Effect::LockAcquire(l)
                                    if order_contradiction(manifest, l, g) =>
                                {
                                    format!(
                                        "`{name}` transitively acquires `{l}` while `{g}` \
                                         (acquired line {gline}) is held, contradicting the \
                                         canonical lock order in concurrency.toml (`{l}` \
                                         before `{g}`); effect chain `{}`",
                                        chain_for(eff)
                                    )
                                }
                                Effect::Alloc if manifest.is_no_alloc_lock(g) => format!(
                                    "`{name}` transitively heap-allocates while the `{g}` \
                                     guard (acquired line {gline}) is held; `{g}` critical \
                                     sections are declared alloc-free ([lock-held] no_alloc \
                                     in concurrency.toml); effect chain `{}`",
                                    chain_for(eff)
                                ),
                                _ => continue,
                            };
                            out.push(Finding {
                                lint: Lint::LockHeldEffects,
                                file: src.path.clone(),
                                line,
                                message,
                            });
                        }
                    }
                }
                // Direct allocation sites inside the guarded region, for
                // no_alloc locks (transitive ones are handled above; L7
                // owns direct blocking constructs).
                for site in &self.sites[i] {
                    if site.effect != Effect::Alloc
                        || site.at < region.start
                        || site.at >= region.end
                        || allow_covers(src, site.line, Lint::LockHeldEffects.name())
                    {
                        continue;
                    }
                    for (g, gline) in &region.held {
                        if !manifest.is_no_alloc_lock(g) {
                            continue;
                        }
                        out.push(Finding {
                            lint: Lint::LockHeldEffects,
                            file: src.path.clone(),
                            line: site.line,
                            message: format!(
                                "{}; executed while the `{g}` guard (acquired line {gline}) \
                                 is held; `{g}` critical sections are declared alloc-free \
                                 ([lock-held] no_alloc in concurrency.toml)",
                                site.what
                            ),
                        });
                    }
                }
            }
        }
        out.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
        out.dedup();
        out
    }

    /// **L14 `deadline-safety`** — every unbounded `Blocking` site inside
    /// a function reachable from a serve root needs a
    /// `// bounded-by: <reason>` annotation (on the site line, or alone on
    /// the line above). Timed variants (`recv_timeout`, `sleep`) bound
    /// themselves. Escape hatch: `// lint: allow(deadline-safety, …)`.
    pub fn lint_deadline(&self) -> Vec<Finding> {
        let parent = self.graph.reachable(RootKind::seeds_serve);
        let mut out = Vec::new();
        for (i, node) in self.graph.nodes.iter().enumerate() {
            if parent[i].is_none() {
                continue;
            }
            let src = &self.graph.sources[node.file];
            for site in &self.sites[i] {
                let Effect::Blocking(kind) = &site.effect else { continue };
                if site.bounded || allow_covers(src, site.line, Lint::DeadlineSafety.name()) {
                    continue;
                }
                out.push(Finding {
                    lint: Lint::DeadlineSafety,
                    file: src.path.clone(),
                    line: site.line,
                    message: format!(
                        "`{}` can block without a bound ({kind} wait) and is reachable \
                         from the serve deadline path `{}`; annotate \
                         `// bounded-by: <reason>` or switch to a timed variant",
                        site.what,
                        self.graph.witness(&parent, i)
                    ),
                });
            }
        }
        out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        out.dedup();
        out
    }

    /// The transitive summary of every `// hot-path-root` function, in
    /// `(file, line, label)` order — the content of `effects.lock`.
    pub fn root_summaries(&self) -> Vec<RootSummary> {
        let mut out: Vec<RootSummary> = Vec::new();
        for (i, node) in self.graph.nodes.iter().enumerate() {
            let Some(kind) = node.root else { continue };
            if node.cold {
                continue;
            }
            out.push(RootSummary {
                file: self.graph.sources[node.file].path.clone(),
                line: node.line,
                label: node.label(),
                kind,
                effects: self.summaries[i].clone(),
            });
        }
        out.sort_by(|a, b| (&a.file, a.line, &a.label).cmp(&(&b.file, b.line, &b.label)));
        out
    }

    /// Machine-readable summary dump for `tg-xtask effects --format json`
    /// (uploaded as a CI artifact and diffed against `effects.lock`).
    pub fn render_json(&self) -> String {
        use crate::report::json_string;
        let roots = self.root_summaries();
        let mut s = String::from("{\"schema_version\":");
        s.push_str(&crate::report::SCHEMA_VERSION.to_string());
        s.push_str(",\"count\":");
        s.push_str(&roots.len().to_string());
        s.push_str(",\"roots\":[");
        for (k, r) in roots.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":{},\"file\":{},\"line\":{},\"kind\":\"{}\",\"effects\":[{}]}}",
                json_string(&r.label),
                json_string(&r.file),
                r.line,
                kind_str(r.kind),
                r.effects
                    .iter()
                    .map(|e| json_string(&e.display()))
                    .collect::<Vec<_>>()
                    .join(","),
            ));
        }
        s.push_str("]}");
        s
    }

    /// A deterministic `callee → … → provider` chain showing where an
    /// effect in a combined callee summary actually comes from: greedy
    /// walk from the lowest-indexed target whose summary holds the effect,
    /// descending into the first (sorted-edge-order) callee that still
    /// carries it, until a node with a *direct* site is reached.
    fn provider_chain(&self, targets: &[usize], eff: &Effect) -> String {
        let Some(&start) = targets
            .iter()
            .find(|&&t| self.summaries[t].contains(eff))
        else {
            return String::new();
        };
        let mut chain = vec![self.graph.nodes[start].label()];
        let mut visited: BTreeSet<usize> = BTreeSet::new();
        visited.insert(start);
        let mut cur = start;
        while !self.has_direct(cur, eff) && chain.len() <= 8 {
            let next = self.graph.edges[cur].iter().copied().find(|&w| {
                !self.graph.nodes[w].cold
                    && !visited.contains(&w)
                    && self.summaries[w].contains(eff)
            });
            match next {
                Some(w) => {
                    visited.insert(w);
                    chain.push(self.graph.nodes[w].label());
                    cur = w;
                }
                None => break,
            }
        }
        chain.join(" → ")
    }

    fn has_direct(&self, i: usize, eff: &Effect) -> bool {
        self.sites[i].iter().any(|s| s.effect == *eff)
    }
}

/// True when `line` is covered by a `// lint: allow(<name>, …)` — either
/// on the line itself or alone on the line directly above (same binding
/// rule as `bounded-by`, for call lines too long to carry the annotation).
fn allow_covers(src: &SourceFile, line: usize, name: &str) -> bool {
    src.is_allowed(line, name)
        || (line >= 2
            && src.is_allowed(line - 1, name)
            && src.code_line(line - 1).trim().is_empty())
}

fn order_contradiction(manifest: &ConcurrencyManifest, acquired: &str, held: &str) -> bool {
    match (manifest.order_index(acquired), manifest.order_index(held)) {
        (Some(a), Some(h)) => a < h,
        _ => false,
    }
}

/// Extracts every direct effect site of one function, suppression-aware.
/// `Alloc` then `Panic` sites come first, in exactly the order the BFS
/// L9/L10 twins enumerate them (pattern-major, then position) — the
/// equivalence guarantee depends on it.
fn direct_sites(
    src: &SourceFile,
    node: &callgraph::FnNode,
    acquires: &[(String, usize)],
    nondet_lines: &[usize],
) -> Vec<EffectSite> {
    let mut out = Vec::new();
    if !node.alloc_ok_body {
        for &(pattern, why) in ALLOC_CALLS {
            for at in callgraph::body_matches(src, node.body, pattern) {
                let line = src.line_of(at);
                if src.is_test_line(line)
                    || src.has_alloc_ok(line)
                    || src.is_allowed(line, Lint::HotPathAlloc.name())
                {
                    continue;
                }
                out.push(EffectSite {
                    effect: Effect::Alloc,
                    at,
                    line,
                    what: why.to_string(),
                    bounded: false,
                });
            }
        }
    }
    for &(pattern, _) in PANIC_PATTERNS {
        for at in callgraph::body_matches(src, node.body, pattern) {
            let line = src.line_of(at);
            if src.is_test_line(line) || src.is_allowed(line, Lint::PanicReach.name()) {
                continue;
            }
            out.push(EffectSite {
                effect: Effect::Panic,
                at,
                line,
                what: pattern.trim_end_matches('(').to_string(),
                bounded: false,
            });
        }
    }
    if src.path.contains("crates/serve/") {
        for at in callgraph::slice_index_sites(src, node.body) {
            let line = src.line_of(at);
            if src.is_test_line(line) || src.is_allowed(line, Lint::PanicReach.name()) {
                continue;
            }
            out.push(EffectSite {
                effect: Effect::Panic,
                at,
                line,
                what: "slice indexing".to_string(),
                bounded: false,
            });
        }
    }
    for &(pattern, kind, auto_bounded) in BLOCKING_CALLS {
        for at in callgraph::body_matches(src, node.body, pattern) {
            let line = src.line_of(at);
            if src.is_test_line(line) {
                continue;
            }
            // Overlapping patterns (`std::fs::File::open`) collapse to one
            // site per (line, kind).
            if out.iter().any(|s| {
                s.line == line && matches!(&s.effect, Effect::Blocking(k) if k == kind)
            }) {
                continue;
            }
            let bounded = auto_bounded
                || src.has_bounded_by(line)
                || (line >= 2
                    && src.has_bounded_by(line - 1)
                    && src.code_line(line - 1).trim().is_empty());
            out.push(EffectSite {
                effect: Effect::Blocking(kind.to_string()),
                at,
                line,
                what: pattern.trim_end_matches('(').to_string(),
                bounded,
            });
        }
    }
    for (lock, line) in acquires {
        if src.is_test_line(*line) {
            continue;
        }
        out.push(EffectSite {
            effect: Effect::LockAcquire(lock.clone()),
            at: 0,
            line: *line,
            what: lock.clone(),
            bounded: false,
        });
    }
    let (first_line, last_line) = (src.line_of(node.body.0), src.line_of(node.body.1));
    for &line in nondet_lines {
        if line >= first_line && line <= last_line {
            out.push(EffectSite {
                effect: Effect::FloatNondet,
                at: 0,
                line,
                what: "float-nondeterminism".to_string(),
                bounded: false,
            });
        }
    }
    let hay = &src.code[node.body.0..=node.body.1.min(src.code.len() - 1)];
    for rel in bounded_matches(hay, "Relaxed") {
        let at = node.body.0 + rel;
        let line = src.line_of(at);
        if src.is_test_line(line)
            || src.has_relaxed_ok(line)
            || (line >= 2 && src.has_relaxed_ok(line - 1))
            || src.is_allowed(line, Lint::Atomics.name())
        {
            continue;
        }
        out.push(EffectSite {
            effect: Effect::RelaxedAtomic,
            at,
            line,
            what: "Ordering::Relaxed".to_string(),
            bounded: false,
        });
    }
    out
}

/// Bottom-up summary computation: iterative Tarjan SCC condensation, then
/// one union pass in the emission order (Tarjan pops an SCC only after
/// every SCC it can reach), which is the least fixpoint.
fn compute_summaries(graph: &CallGraph, sites: &[Vec<EffectSite>]) -> Vec<BTreeSet<Effect>> {
    let n = graph.nodes.len();
    // Calls to cold-path functions contribute nothing (the same pruning
    // the BFS closures apply).
    let edges: Vec<Vec<usize>> = graph
        .edges
        .iter()
        .map(|outs| outs.iter().copied().filter(|&j| !graph.nodes[j].cold).collect())
        .collect();
    let (scc_id, scc_count) = tarjan_sccs(&edges);
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); scc_count];
    for v in 0..n {
        members[scc_id[v]].push(v);
    }
    let mut summaries: Vec<BTreeSet<Effect>> = vec![BTreeSet::new(); n];
    for (id, group) in members.iter().enumerate() {
        let mut acc: BTreeSet<Effect> = BTreeSet::new();
        for &v in group {
            for site in &sites[v] {
                acc.insert(site.effect.clone());
            }
            for &w in &edges[v] {
                if scc_id[w] != id {
                    acc.extend(summaries[w].iter().cloned());
                }
            }
        }
        for &v in group {
            summaries[v] = acc.clone();
        }
    }
    summaries
}

/// Iterative Tarjan: returns per-node SCC ids, numbered in emission order
/// (an SCC's id is greater than every SCC reachable from it).
fn tarjan_sccs(edges: &[Vec<usize>]) -> (Vec<usize>, usize) {
    let n = edges.len();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut scc_id = vec![UNSET; n];
    let mut next_index = 0usize;
    let mut scc_count = 0usize;
    let mut call: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        call.push((start, 0));
        while let Some(frame) = call.last_mut() {
            let (v, ci) = (frame.0, frame.1);
            if ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if ci < edges[v].len() {
                frame.1 += 1;
                let w = edges[v][ci];
                if index[w] == UNSET {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc_id[w] = scc_count;
                        if w == v {
                            break;
                        }
                    }
                    scc_count += 1;
                }
                call.pop();
                if let Some(parent) = call.last() {
                    let p = parent.0;
                    low[p] = low[p].min(low[v]);
                }
            }
        }
    }
    (scc_id, scc_count)
}

/// Serializes root summaries to the committed `effects.lock` text.
pub fn serialize_lock(roots: &[RootSummary]) -> String {
    let mut s = String::from(
        "# effects.lock — committed transitive effect summaries of every hot-path root\n\
         # (L16 `effects-drift`). A diff here means the effect surface of a hot path\n\
         # changed. Regenerate deliberately with:\n\
         #   UPDATE_EFFECTS_LOCK=1 cargo run -q -p tg-xtask -- lint\n\
         # and commit the result after reviewing the change.\n",
    );
    s.push_str(&format!("schema {}\n", crate::report::SCHEMA_VERSION));
    for r in roots {
        s.push_str(&format!("root {}:{} {} {}\n", r.file, r.line, r.label, kind_str(r.kind)));
        for e in &r.effects {
            s.push_str(&format!("  effect {}\n", e.display()));
        }
    }
    s
}

/// Parses `effects.lock` text back into root summaries. Returns an error
/// string on malformed input (surfaced as a single L16 finding).
pub fn parse_lock(text: &str) -> Result<Vec<RootSummary>, String> {
    let mut out: Vec<RootSummary> = Vec::new();
    let mut schema_seen = false;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.trim_start().starts_with('#') || line.trim().is_empty() {
            continue;
        }
        if let Some(v) = line.strip_prefix("schema ") {
            let v: u32 = v
                .trim()
                .parse()
                .map_err(|_| format!("line {}: bad schema version `{v}`", i + 1))?;
            if v != crate::report::SCHEMA_VERSION {
                return Err(format!(
                    "schema {v}, expected {} — regenerate effects.lock",
                    crate::report::SCHEMA_VERSION
                ));
            }
            schema_seen = true;
        } else if let Some(rest) = line.strip_prefix("root ") {
            let mut parts = rest.split_whitespace();
            let loc = parts.next().ok_or_else(|| format!("line {}: missing location", i + 1))?;
            let label = parts
                .next()
                .ok_or_else(|| format!("line {}: missing label", i + 1))?
                .to_string();
            let kind = parts
                .next()
                .and_then(kind_parse)
                .ok_or_else(|| format!("line {}: missing or bad root kind", i + 1))?;
            let (file, line_no) = loc
                .rsplit_once(':')
                .ok_or_else(|| format!("line {}: bad location `{loc}`", i + 1))?;
            let line_no: usize = line_no
                .parse()
                .map_err(|_| format!("line {}: bad line number in `{loc}`", i + 1))?;
            out.push(RootSummary {
                file: file.to_string(),
                line: line_no,
                label,
                kind,
                effects: BTreeSet::new(),
            });
        } else if let Some(rest) = line.trim_start().strip_prefix("effect ") {
            let eff = Effect::parse(rest.trim())
                .ok_or_else(|| format!("line {}: unknown effect `{}`", i + 1, rest.trim()))?;
            out.last_mut()
                .ok_or_else(|| format!("line {}: effect before any root", i + 1))?
                .effects
                .insert(eff);
        } else {
            return Err(format!("line {}: unrecognized line `{line}`", i + 1));
        }
    }
    if !schema_seen {
        return Err("missing `schema` line — regenerate effects.lock".to_string());
    }
    Ok(out)
}

/// **L16 `effects-drift`** — compares computed root summaries against the
/// committed `effects.lock`. Roots are identified by `(file, label)` so
/// unrelated edits that shift line numbers don't fire; any change to the
/// root set, a root's kind, or a root's effect set does.
pub fn check_drift(computed: &[RootSummary], committed: Option<&str>) -> Vec<Finding> {
    const REGEN: &str =
        "regenerate deliberately with `UPDATE_EFFECTS_LOCK=1 cargo run -q -p tg-xtask -- lint` \
         and commit the new effects.lock";
    let mut out = Vec::new();
    let Some(text) = committed else {
        return vec![Finding {
            lint: Lint::EffectsDrift,
            file: "effects.lock".to_string(),
            line: 1,
            message: format!("effects.lock not found at the workspace root; {REGEN}"),
        }];
    };
    let recorded = match parse_lock(text) {
        Ok(r) => r,
        Err(e) => {
            return vec![Finding {
                lint: Lint::EffectsDrift,
                file: "effects.lock".to_string(),
                line: 1,
                message: format!("effects.lock is malformed: {e}"),
            }];
        }
    };
    let key = |r: &RootSummary| (r.file.clone(), r.label.clone());
    for c in computed {
        let Some(r) = recorded.iter().find(|r| key(r) == key(c)) else {
            out.push(Finding {
                lint: Lint::EffectsDrift,
                file: c.file.clone(),
                line: c.line,
                message: format!(
                    "hot-path root `{}` is not recorded in effects.lock; {REGEN}",
                    c.label
                ),
            });
            continue;
        };
        if r.kind != c.kind {
            out.push(Finding {
                lint: Lint::EffectsDrift,
                file: c.file.clone(),
                line: c.line,
                message: format!(
                    "hot-path root `{}` changed kind ({} → {}); {REGEN}",
                    c.label,
                    kind_str(r.kind),
                    kind_str(c.kind)
                ),
            });
        }
        for added in c.effects.difference(&r.effects) {
            out.push(Finding {
                lint: Lint::EffectsDrift,
                file: c.file.clone(),
                line: c.line,
                message: format!(
                    "effect `{}` appeared in the summary of hot-path root `{}` (not in \
                     effects.lock); if the new effect is intended, {REGEN}",
                    added.display(),
                    c.label
                ),
            });
        }
        for removed in r.effects.difference(&c.effects) {
            out.push(Finding {
                lint: Lint::EffectsDrift,
                file: c.file.clone(),
                line: c.line,
                message: format!(
                    "effect `{}` recorded for hot-path root `{}` is no longer inferred; \
                     {REGEN} to tighten the gate",
                    removed.display(),
                    c.label
                ),
            });
        }
    }
    for r in &recorded {
        if !computed.iter().any(|c| key(c) == key(r)) {
            out.push(Finding {
                lint: Lint::EffectsDrift,
                file: r.file.clone(),
                line: r.line,
                message: format!(
                    "effects.lock records hot-path root `{}` which no longer exists (or \
                     lost its `// hot-path-root` annotation); {REGEN}",
                    r.label
                ),
            });
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_of(src: &'static str) -> (Vec<SourceFile>, Vec<String>, Vec<BTreeSet<Effect>>) {
        let sources = vec![SourceFile::parse("t.rs", src)];
        let engine = EffectEngine::build(&sources);
        let labels = engine.graph.nodes.iter().map(|n| n.label()).collect();
        let summaries = engine.summaries.clone();
        (sources, labels, summaries)
    }

    fn summary_of<'s>(
        labels: &[String],
        summaries: &'s [BTreeSet<Effect>],
        name: &str,
    ) -> &'s BTreeSet<Effect> {
        let i = labels
            .iter()
            .position(|l| l == name)
            .unwrap_or_else(|| panic!("no node {name}: {labels:?}"));
        &summaries[i]
    }

    #[test]
    fn direct_effects_propagate_to_callers() {
        let src = "fn top() { mid(); }\nfn mid() { leaf(); }\nfn leaf() { let v = Vec::new(); }\n";
        let (_s, labels, sums) = engine_of(src);
        assert!(summary_of(&labels, &sums, "leaf").contains(&Effect::Alloc));
        assert!(summary_of(&labels, &sums, "mid").contains(&Effect::Alloc));
        assert!(summary_of(&labels, &sums, "top").contains(&Effect::Alloc));
    }

    #[test]
    fn self_recursion_reaches_a_fixpoint() {
        let src = "fn rec(n: u32) { if n > 0 { rec(n - 1); } x().unwrap(); }\nfn x() -> Option<u32> { None }\n";
        let (_s, labels, sums) = engine_of(src);
        assert!(summary_of(&labels, &sums, "rec").contains(&Effect::Panic));
    }

    #[test]
    fn mutual_recursion_shares_the_component_summary() {
        let src = "fn even(n: u32) { if n > 0 { odd(n - 1); } }\n\
                   fn odd(n: u32) { let v = Vec::new(); if n > 0 { even(n - 1); } }\n\
                   fn entry() { even(4); }\n";
        let (_s, labels, sums) = engine_of(src);
        assert!(summary_of(&labels, &sums, "even").contains(&Effect::Alloc));
        assert!(summary_of(&labels, &sums, "odd").contains(&Effect::Alloc));
        assert!(summary_of(&labels, &sums, "entry").contains(&Effect::Alloc));
    }

    #[test]
    fn three_cycle_with_tail_effect_converges() {
        let src = "fn a() { b(); }\nfn b() { c(); }\nfn c() { a(); tail(); }\n\
                   fn tail() { let g = lk.lock(); }\n";
        let (_s, labels, sums) = engine_of(src);
        let eff = Effect::LockAcquire("lk".to_string());
        for f in ["a", "b", "c", "tail"] {
            assert!(summary_of(&labels, &sums, f).contains(&eff), "{f} missing lock effect");
        }
    }

    #[test]
    fn cold_callees_contribute_nothing() {
        let src = "fn hot() { setup(); }\n// cold-path: runs once at startup\nfn setup() { let v = Vec::new(); }\n";
        let (_s, labels, sums) = engine_of(src);
        assert!(summary_of(&labels, &sums, "setup").contains(&Effect::Alloc));
        assert!(!summary_of(&labels, &sums, "hot").contains(&Effect::Alloc));
    }

    #[test]
    fn suppressed_sites_stay_out_of_summaries() {
        let src = "fn f() {\n    let v = Vec::new(); // alloc-ok: grows once, then reused\n    g();\n}\nfn g() { let w = vec![1]; }\n";
        let sources = vec![SourceFile::parse("t.rs", src)];
        let engine = EffectEngine::build(&sources);
        let f = engine.graph.nodes.iter().position(|n| n.name == "f").expect("f");
        let g = engine.graph.nodes.iter().position(|n| n.name == "g").expect("g");
        assert!(!engine.sites(f).iter().any(|s| s.effect == Effect::Alloc));
        // f still inherits g's unsuppressed allocation transitively.
        assert!(engine.summary(f).contains(&Effect::Alloc));
        assert!(engine.summary(g).contains(&Effect::Alloc));
    }

    #[test]
    fn blocking_sites_classify_and_bound() {
        let src = "fn f(rx: &Rx) {\n    let a = rx.recv();\n    let b = rx.recv_timeout(ms);\n    let c = rx.recv(); // bounded-by: sender closes on shutdown\n}\n";
        let sources = vec![SourceFile::parse("t.rs", src)];
        let engine = EffectEngine::build(&sources);
        let blocking: Vec<&EffectSite> = engine
            .sites(0)
            .iter()
            .filter(|s| matches!(s.effect, Effect::Blocking(_)))
            .collect();
        assert_eq!(blocking.len(), 3, "{blocking:?}");
        assert!(!blocking[0].bounded, "bare recv is unbounded");
        assert!(blocking[1].bounded, "recv_timeout bounds itself");
        assert!(blocking[2].bounded, "bounded-by annotation accepted");
    }

    #[test]
    fn lock_effects_serialize_and_parse_round_trip() {
        let roots = vec![RootSummary {
            file: "crates/x/src/a.rs".to_string(),
            line: 12,
            label: "T::run".to_string(),
            kind: RootKind::Serve,
            effects: [
                Effect::Alloc,
                Effect::Blocking("recv".to_string()),
                Effect::LockAcquire("fifo".to_string()),
            ]
            .into_iter()
            .collect(),
        }];
        let text = serialize_lock(&roots);
        let parsed = parse_lock(&text).expect("round trip");
        assert_eq!(parsed, roots);
    }

    #[test]
    fn drift_detects_added_removed_and_missing() {
        let base = vec![RootSummary {
            file: "a.rs".to_string(),
            line: 1,
            label: "f".to_string(),
            kind: RootKind::Both,
            effects: [Effect::Alloc].into_iter().collect(),
        }];
        let lock = serialize_lock(&base);
        // Unchanged → clean.
        assert!(check_drift(&base, Some(&lock)).is_empty());
        // Added effect → drift.
        let mut grown = base.clone();
        grown[0].effects.insert(Effect::Panic);
        let d = check_drift(&grown, Some(&lock));
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`panic` appeared"), "{}", d[0].message);
        // Removed effect → drift (tighten).
        let mut shrunk = base.clone();
        shrunk[0].effects.clear();
        let d = check_drift(&shrunk, Some(&lock));
        assert!(d[0].message.contains("no longer inferred"), "{d:?}");
        // Missing lock file → one finding.
        let d = check_drift(&base, None);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("not found"));
        // New root → drift; stale root → drift.
        let d = check_drift(&[], Some(&lock));
        assert!(d[0].message.contains("no longer exists"), "{d:?}");
        let d = check_drift(&base, Some("schema 3\n"));
        assert!(d.iter().any(|f| f.message.contains("not recorded")), "{d:?}");
    }

    #[test]
    fn line_shifts_do_not_drift() {
        let base = vec![RootSummary {
            file: "a.rs".to_string(),
            line: 10,
            label: "f".to_string(),
            kind: RootKind::Both,
            effects: BTreeSet::new(),
        }];
        let lock = serialize_lock(&base);
        let mut moved = base.clone();
        moved[0].line = 99;
        assert!(check_drift(&moved, Some(&lock)).is_empty(), "roots keyed by (file, label)");
    }
}
