//! Finding renderers: human text and machine-readable JSON.
//!
//! The JSON writer is hand-rolled (std-only crate) and emits a stable
//! shape for CI consumption:
//!
//! ```json
//! {
//!   "schema_version": 3,
//!   "files_checked": 30,
//!   "count": 1,
//!   "findings": [
//!     {"lint": "panic", "file": "crates/core/src/cache.rs", "line": 7,
//!      "message": "..."}
//!   ]
//! }
//! ```
//!
//! The shape is frozen behind [`SCHEMA_VERSION`] and the field-path
//! golden `tests/golden/lint_schema.txt` (see `tests/lint_schema.rs`):
//! adding, removing, or renaming a field fails the gate until the golden
//! is regenerated *and* the version is bumped.
//!
//! The `tg-xtask effects --format json` dump (root effect summaries,
//! rendered by [`crate::effects::EffectEngine::render_json`]) shares the
//! version and is fingerprinted by [`effects_schema_paths`] under the same
//! golden.

use crate::LintReport;

/// Version of the `lint --format json` / `callgraph --format json` /
/// `effects --format json` report shapes. Bump on any change to the field
/// sets in [`schema_paths`] or [`effects_schema_paths`].
/// v3: added the effects report (L13–L16 effect-inference engine).
pub const SCHEMA_VERSION: u32 = 3;

/// The sorted field-path fingerprint of the lint report JSON — the same
/// `path: type` convention `tg_telemetry::schema_paths` uses, kept static
/// here because the report writer itself is static (no serde).
pub fn schema_paths() -> Vec<&'static str> {
    vec![
        "count: number",
        "files_checked: number",
        "findings[].file: string",
        "findings[].line: number",
        "findings[].lint: string",
        "findings[].message: string",
        "schema_version: number",
    ]
}

/// The sorted field-path fingerprint of the effects JSON dump
/// (`tg-xtask effects --format json`), frozen under the same golden as
/// [`schema_paths`] with an `effects.` prefix.
pub fn effects_schema_paths() -> Vec<&'static str> {
    vec![
        "count: number",
        "roots[].effects[]: string",
        "roots[].file: string",
        "roots[].kind: string",
        "roots[].line: number",
        "roots[].name: string",
        "schema_version: number",
    ]
}

/// Human-readable report, one `file:line: [lint] message` per finding.
pub fn render_text(report: &LintReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!("{}:{}: [{}] {}\n", f.file, f.line, f.lint.name(), f.message));
    }
    out.push_str(&format!(
        "lint: {} finding(s) in {} file(s) checked\n",
        report.findings.len(),
        report.files_checked
    ));
    out
}

/// Machine-readable report.
pub fn render_json(report: &LintReport) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"schema_version\":{SCHEMA_VERSION},"));
    out.push_str(&format!("\"files_checked\":{},", report.files_checked));
    out.push_str(&format!("\"count\":{},", report.findings.len()));
    out.push_str("\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"lint\":{},\"file\":{},\"line\":{},\"message\":{}}}",
            json_string(f.lint.name()),
            json_string(&f.file),
            f.line,
            json_string(&f.message),
        ));
    }
    out.push_str("]}");
    out
}

pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, Lint};

    fn sample() -> LintReport {
        LintReport {
            findings: vec![Finding {
                lint: Lint::Panic,
                file: "crates/core/src/cache.rs".to_string(),
                line: 7,
                message: "a \"quoted\" message".to_string(),
            }],
            files_checked: 3,
        }
    }

    #[test]
    fn text_report_lists_file_line_and_lint() {
        let text = render_text(&sample());
        assert!(text.contains("crates/core/src/cache.rs:7: [panic]"));
        assert!(text.contains("1 finding(s) in 3 file(s)"));
    }

    #[test]
    fn json_report_escapes_and_counts() {
        let json = render_json(&sample());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"count\":1"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"line\":7"));
    }

    #[test]
    fn empty_report_is_valid_json() {
        let json = render_json(&LintReport { findings: vec![], files_checked: 0 });
        assert_eq!(
            json,
            format!(
                "{{\"schema_version\":{SCHEMA_VERSION},\
                 \"files_checked\":0,\"count\":0,\"findings\":[]}}"
            )
        );
    }

    #[test]
    fn schema_paths_are_sorted_and_cover_the_rendered_fields() {
        let paths = schema_paths();
        let mut sorted = paths.clone();
        sorted.sort_unstable();
        assert_eq!(paths, sorted, "schema_paths must stay sorted");
        // Every key the renderer writes appears in the fingerprint.
        let json = render_json(&sample());
        for path in &paths {
            let key = path
                .split(':')
                .next()
                .unwrap_or(path)
                .trim()
                .rsplit('.')
                .next()
                .unwrap_or(path)
                .trim_end_matches("[]");
            assert!(
                json.contains(&format!("\"{key}\":")),
                "schema path {path} has no key {key} in the rendered JSON"
            );
        }
    }
}
