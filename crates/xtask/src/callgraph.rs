//! Cross-crate call-graph reachability: the engine behind L9
//! (`hot-path-alloc`) and L10 (`panic-reach`).
//!
//! The per-file lints L1–L8 answer "does this line violate the policy?";
//! the questions that actually protect the inference hot path are
//! reachability questions: *can a request entering `embed_batch` hit an
//! allocation? can the serve worker loop reach a panic?* This module
//! builds a function-level call graph over the whole workspace from the
//! blanked code views ([`crate::source`]) and the fn-scope extraction
//! ([`crate::scopes::analyze_fns`]), seeds it from `// hot-path-root`
//! annotations, and checks everything transitively reachable against the
//! shared call tables in [`crate::rules::calls`].
//!
//! ## Name resolution model (and its known limits)
//!
//! Resolution is *name-based*, not type-based — there is no trait solver
//! here. A call site resolves to workspace functions as follows:
//!
//! * `Type::name(...)` / `module::name(...)` — functions named `name`
//!   inside an `impl` block whose self-type's last path segment is the
//!   qualifier; if none match, free functions named `name`.
//!   `Self::name(...)` first rewrites `Self` to the enclosing impl type.
//! * `recv.name(...)` — every impl-block function named `name`, in any
//!   workspace crate (the receiver's type is unknown).
//! * `name(...)` — every free function named `name`.
//!
//! This over-approximates: two unrelated `fn len` impls alias, closures
//! and function pointers are invisible, and macro bodies are opaque. For
//! a lint, over-approximation is the safe direction — it can only make
//! the closure (and therefore the checked region) larger. The escape
//! hatches (`// alloc-ok:`, `// cold-path:`, `// lint: allow(...)`) are
//! the pressure valve, and each demands a written reason.
//!
//! ## Annotation grammar
//!
//! * `// hot-path-root` — the fn on this line (or the line below) seeds
//!   both closures; `(alloc)` / `(serve)` restrict it to L9 / L10.
//! * `// cold-path: <reason>` — the fn is pruned from the closures
//!   (setup/teardown a root calls once per lifetime, not per batch).
//! * `// alloc-ok: <reason>` — on an allocation line, suppresses L9
//!   there; on a `fn` declaration line, suppresses L9 for the whole body.

use crate::rules::calls::{ALLOC_CALLS, PANIC_PATTERNS};
use crate::rules::{is_ident_byte, Finding, Lint};
use crate::scopes::analyze_fns;
use crate::source::{RootKind, SourceFile};

/// One function in the graph.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// Index into the source slice the graph was built over.
    pub file: usize,
    /// Bare function name.
    pub name: String,
    /// Self-type's last path segment for impl-block fns, `None` for free
    /// fns. (`impl TimeEncodeCache` → `TimeEncodeCache`.)
    pub qual: Option<String>,
    /// Trait's last path segment for `impl Trait for Type` blocks.
    pub trait_name: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Body byte span in the code view, `[open, close]` braces inclusive.
    pub body: (usize, usize),
    /// `// hot-path-root` annotation, if any.
    pub root: Option<RootKind>,
    /// True if annotated `// cold-path: <reason>` — pruned from closures.
    pub cold: bool,
    /// True if the declaration line carries `// alloc-ok: <reason>` —
    /// the whole body is exempt from L9.
    pub alloc_ok_body: bool,
}

impl FnNode {
    /// `Type::name` or bare `name` — the display label used in findings,
    /// JSON, and DOT output.
    pub fn label(&self) -> String {
        match &self.qual {
            Some(q) => format!("{q}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A workspace (or fixture) call graph over borrowed parsed sources.
pub struct CallGraph<'a> {
    pub sources: &'a [SourceFile],
    pub nodes: Vec<FnNode>,
    /// Adjacency: `edges[i]` = indices of nodes callable from node `i`,
    /// sorted and deduped.
    pub edges: Vec<Vec<usize>>,
}

/// An `impl` block: self-type, optional trait, and body span. Shared
/// with L12 (`rules::errors`), which needs to know which `TgError`
/// occurrences sit inside `Display`/`From`/builder impls.
pub(crate) struct ImplBlock {
    pub(crate) self_type: String,
    pub(crate) trait_name: Option<String>,
    pub(crate) body: (usize, usize),
}

/// How a call site spells its callee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum CallKind {
    /// `recv.name(...)`.
    Method,
    /// `Qual::name(...)` with the qualifier's last segment.
    Qualified(String),
    /// `name(...)`.
    Bare,
}

impl<'a> CallGraph<'a> {
    /// Builds the graph: extracts impl blocks and fn scopes per file,
    /// annotates nodes from the source's hot-root/cold-path markers, then
    /// resolves every call site to candidate nodes.
    pub fn build(sources: &'a [SourceFile]) -> Self {
        let mut nodes: Vec<FnNode> = Vec::new();
        for (file, src) in sources.iter().enumerate() {
            let impls = extract_impl_blocks(src);
            for scope in analyze_fns(src) {
                let decl = scope.body.0; // inside any impl that contains the body
                let owner = impls
                    .iter()
                    .filter(|b| decl > b.body.0 && decl < b.body.1)
                    .min_by_key(|b| b.body.1 - b.body.0); // innermost
                nodes.push(FnNode {
                    file,
                    name: scope.name.clone(),
                    qual: owner.map(|b| b.self_type.clone()),
                    trait_name: owner.and_then(|b| b.trait_name.clone()),
                    line: scope.line,
                    body: scope.body,
                    root: src.root_kind_for(scope.line),
                    // Like roots, a cold-path marker is either trailing on
                    // the declaration line or a whole-line comment above.
                    cold: src.has_cold_path(scope.line)
                        || (scope.line >= 2
                            && src.has_cold_path(scope.line - 1)
                            && src.code_line(scope.line - 1).trim().is_empty()),
                    alloc_ok_body: src.has_alloc_ok(scope.line)
                        || (scope.line >= 2
                            && src.has_alloc_ok(scope.line - 1)
                            && src.code_line(scope.line - 1).trim().is_empty()),
                });
            }
        }
        let edges = resolve_edges(sources, &nodes);
        Self { sources, nodes, edges }
    }

    /// BFS over the graph from every root whose kind passes `seeds`,
    /// skipping `// cold-path:` nodes. Returns, per node, `None`
    /// (unreached) or `Some(parent)` — the node it was first reached
    /// from (`parent == self` for roots).
    pub fn reachable(&self, seeds: impl Fn(RootKind) -> bool) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut queue: Vec<usize> = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if n.root.is_some_and(&seeds) && !n.cold {
                parent[i] = Some(i);
                queue.push(i);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let at = queue[head];
            head += 1;
            for &next in &self.edges[at] {
                if parent[next].is_none() && !self.nodes[next].cold {
                    parent[next] = Some(at);
                    queue.push(next);
                }
            }
        }
        parent
    }

    /// `root → … → node` witness path for diagnostics.
    pub(crate) fn witness(&self, parent: &[Option<usize>], mut at: usize) -> String {
        let mut chain = vec![self.nodes[at].label()];
        while let Some(p) = parent[at] {
            if p == at {
                break;
            }
            at = p;
            chain.push(self.nodes[at].label());
            if chain.len() > 8 {
                chain.push("…".to_string());
                break;
            }
        }
        chain.reverse();
        chain.join(" → ")
    }

    /// **L9 `hot-path-alloc`, reference implementation** — flags every
    /// [`ALLOC_CALLS`] site inside a function reachable from an alloc
    /// root, unless the line (or the fn declaration line) carries
    /// `// alloc-ok: <reason>`, or the line carries
    /// `// lint: allow(hot-path-alloc, <reason>)`.
    ///
    /// The production L9 is [`crate::effects::EffectEngine::
    /// lint_hot_path_alloc`], which derives the same findings from the
    /// per-function effect summaries; this direct BFS twin is kept as the
    /// independent oracle the equivalence test in `tests/lint_gate.rs`
    /// compares against byte-for-byte.
    pub fn lint_hot_path_alloc_bfs(&self) -> Vec<Finding> {
        let parent = self.reachable(RootKind::seeds_alloc);
        let mut out = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if parent[i].is_none() || node.alloc_ok_body {
                continue;
            }
            let src = &self.sources[node.file];
            for &(pattern, why) in ALLOC_CALLS {
                for at in body_matches(src, node.body, pattern) {
                    let line = src.line_of(at);
                    if src.is_test_line(line)
                        || src.has_alloc_ok(line)
                        || src.is_allowed(line, Lint::HotPathAlloc.name())
                    {
                        continue;
                    }
                    out.push(Finding {
                        lint: Lint::HotPathAlloc,
                        file: src.path.clone(),
                        line,
                        message: format!(
                            "{why}; on the hot path `{}`; \
                             annotate `// alloc-ok: <reason>` if intended",
                            self.witness(&parent, i)
                        ),
                    });
                }
            }
        }
        out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        out.dedup();
        out
    }

    /// **L10 `panic-reach`, reference implementation** — flags every
    /// [`PANIC_PATTERNS`] site inside a function reachable from a serve
    /// root (wherever it lives), plus non-literal slice indexing inside
    /// reachable `crates/serve/` code. Suppressed only by
    /// `// lint: allow(panic-reach, <reason>)` — an `allow(panic, …)` does
    /// not carry over, because "acceptable in this file" and "acceptable
    /// on the request path" are different claims.
    ///
    /// Like [`Self::lint_hot_path_alloc_bfs`], this is the BFS oracle the
    /// summary-derived production L10 is equivalence-tested against.
    pub fn lint_panic_reach_bfs(&self) -> Vec<Finding> {
        let parent = self.reachable(RootKind::seeds_serve);
        let mut out = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if parent[i].is_none() {
                continue;
            }
            let src = &self.sources[node.file];
            for &(pattern, _) in PANIC_PATTERNS {
                for at in body_matches(src, node.body, pattern) {
                    self.push_panic_reach(&parent, i, at, pattern, &mut out);
                }
            }
            if src.path.contains("crates/serve/") {
                for at in slice_index_sites(src, node.body) {
                    self.push_panic_reach(&parent, i, at, "slice indexing", &mut out);
                }
            }
        }
        out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        out.dedup();
        out
    }

    fn push_panic_reach(
        &self,
        parent: &[Option<usize>],
        node: usize,
        at: usize,
        what: &str,
        out: &mut Vec<Finding>,
    ) {
        let src = &self.sources[self.nodes[node].file];
        let line = src.line_of(at);
        if src.is_test_line(line) || src.is_allowed(line, Lint::PanicReach.name()) {
            return;
        }
        out.push(Finding {
            lint: Lint::PanicReach,
            file: src.path.clone(),
            line,
            message: format!(
                "`{}` can panic and is reachable from the serve path `{}`; \
                 return a `TgError` instead",
                what.trim_end_matches('('),
                self.witness(parent, node)
            ),
        });
    }

    /// Node indices sorted by `(file path, line, label)` — the canonical
    /// emission order for JSON and DOT output, so artifacts diff cleanly
    /// in CI regardless of discovery order.
    fn display_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.nodes.len()).collect();
        order.sort_by(|&a, &b| {
            let na = &self.nodes[a];
            let nb = &self.nodes[b];
            (&self.sources[na.file].path, na.line, na.label())
                .cmp(&(&self.sources[nb.file].path, nb.line, nb.label()))
        });
        order
    }

    /// Machine-readable graph dump for `tg-xtask callgraph --format json`.
    /// Functions are sorted by `(file, line, name)` and each `calls` list
    /// lexicographically, so the artifact is byte-stable across runs.
    pub fn render_json(&self) -> String {
        use crate::report::json_string;
        let alloc = self.reachable(RootKind::seeds_alloc);
        let serve = self.reachable(RootKind::seeds_serve);
        let mut s = String::from("{\"schema_version\":");
        s.push_str(&crate::report::SCHEMA_VERSION.to_string());
        s.push_str(",\"functions\":[");
        for (k, &i) in self.display_order().iter().enumerate() {
            let n = &self.nodes[i];
            if k > 0 {
                s.push(',');
            }
            let mut calls: Vec<String> =
                self.edges[i].iter().map(|&j| json_string(&self.nodes[j].label())).collect();
            calls.sort();
            calls.dedup();
            s.push_str(&format!(
                "{{\"name\":{},\"file\":{},\"line\":{},\"root\":{},\"cold\":{},\
                 \"reachable_alloc\":{},\"reachable_serve\":{},\"calls\":[{}]}}",
                json_string(&n.label()),
                json_string(&self.sources[n.file].path),
                n.line,
                match n.root {
                    None => "null".to_string(),
                    Some(RootKind::Both) => "\"both\"".to_string(),
                    Some(RootKind::Alloc) => "\"alloc\"".to_string(),
                    Some(RootKind::Serve) => "\"serve\"".to_string(),
                },
                n.cold,
                alloc[i].is_some(),
                serve[i].is_some(),
                calls.join(","),
            ));
        }
        s.push_str("]}");
        s
    }

    /// Graphviz dump for `tg-xtask callgraph --format dot`. Only nodes in
    /// a closure (or adjacent to one) are emitted — the full workspace
    /// graph is too dense to read. Nodes are numbered in `(file, line,
    /// label)` order and edges sorted, so the artifact is byte-stable.
    pub fn render_dot(&self) -> String {
        let alloc = self.reachable(RootKind::seeds_alloc);
        let serve = self.reachable(RootKind::seeds_serve);
        let keep: Vec<bool> = (0..self.nodes.len())
            .map(|i| alloc[i].is_some() || serve[i].is_some())
            .collect();
        // Renumber: DOT ids follow the canonical display order, not the
        // build order.
        let order = self.display_order();
        let mut dot_id = vec![usize::MAX; self.nodes.len()];
        for (k, &i) in order.iter().enumerate() {
            dot_id[i] = k;
        }
        let mut s = String::from("digraph hot_paths {\n  rankdir=LR;\n  node [shape=box];\n");
        for &i in &order {
            if !keep[i] {
                continue;
            }
            let n = &self.nodes[i];
            let color = match (n.root.is_some(), alloc[i].is_some() && serve[i].is_some()) {
                (true, _) => "red",
                (false, true) => "purple",
                (false, false) if alloc[i].is_some() => "blue",
                _ => "darkgreen",
            };
            s.push_str(&format!(
                "  n{} [label=\"{}\\n{}:{}\", color={}];\n",
                dot_id[i],
                n.label().replace('"', "'"),
                self.sources[n.file].path.replace('"', "'"),
                n.line,
                color
            ));
        }
        let mut arcs: Vec<(usize, usize)> = Vec::new();
        for (i, outs) in self.edges.iter().enumerate() {
            for &j in outs {
                if keep[i] && keep[j] {
                    arcs.push((dot_id[i], dot_id[j]));
                }
            }
        }
        arcs.sort_unstable();
        arcs.dedup();
        for (i, j) in arcs {
            s.push_str(&format!("  n{i} -> n{j};\n"));
        }
        s.push_str("}\n");
        s
    }
}

/// Extracts `impl` blocks from the code view. An `impl` keyword counts
/// only at paren depth 0 (skipping `impl Fn(...)` in argument position)
/// and when not preceded by `->` (skipping `-> impl Iterator` returns).
pub(crate) fn extract_impl_blocks(src: &SourceFile) -> Vec<ImplBlock> {
    let code = &src.code;
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut paren = 0i32;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'(' => paren += 1,
            b')' => paren -= 1,
            b'i' if paren <= 0 && code[i..].starts_with("impl") => {
                let left_ok = i == 0 || !is_ident_byte(bytes[i - 1]);
                let right_ok =
                    matches!(bytes.get(i + 4), Some(b) if b.is_ascii_whitespace() || *b == b'<');
                let arrow = code[..i].trim_end().ends_with("->");
                if left_ok && right_ok && !arrow {
                    if let Some(block) = parse_impl_header(code, i) {
                        i = block.body.0; // skip into the body; nested impls are rare
                        out.push(block);
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Parses one `impl … {` header starting at the `impl` keyword: skips the
/// generic parameter list, splits on a depth-0 ` for `, and takes the last
/// path segment of the self type (and of the trait, if any).
fn parse_impl_header(code: &str, at: usize) -> Option<ImplBlock> {
    let open = at + code[at..].find('{')?;
    let mut header = code[at + 4..open].trim();
    // Strip `<…>` generics after the keyword, minding `->` inside bounds.
    if let Some(rest) = header.strip_prefix('<') {
        let mut depth = 1i32;
        let b = rest.as_bytes();
        let mut j = 0;
        while j < b.len() && depth > 0 {
            match b[j] {
                b'<' => depth += 1,
                b'>' if j == 0 || b[j - 1] != b'-' => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        header = rest[j..].trim();
    }
    // Ignore `where` clauses entirely.
    let header = header.split(" where ").next().unwrap_or(header).trim();
    let (trait_part, type_part) = match split_top_level_for(header) {
        Some((t, s)) => (Some(t), s),
        None => (None, header),
    };
    let self_type = last_segment(type_part);
    if self_type.is_empty() {
        return None;
    }
    let close = matching_brace(code.as_bytes(), open)?;
    Some(ImplBlock {
        self_type,
        trait_name: trait_part.map(last_segment).filter(|t| !t.is_empty()),
        body: (open, close),
    })
}

/// Splits `Trait for Type` at a ` for ` outside any `<…>` nesting.
fn split_top_level_for(header: &str) -> Option<(&str, &str)> {
    let bytes = header.as_bytes();
    let mut depth = 0i32;
    let mut i = 0;
    while i + 5 <= bytes.len() {
        match bytes[i] {
            b'<' => depth += 1,
            b'>' if i == 0 || bytes[i - 1] != b'-' => depth -= 1,
            b' ' if depth <= 0 && header[i..].starts_with(" for ") => {
                return Some((header[..i].trim(), header[i + 5..].trim()));
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Last `::` path segment, with generics/reference/dyn decoration removed:
/// `&mut tgraph::TemporalGraph<'a>` → `TemporalGraph`.
fn last_segment(type_part: &str) -> String {
    let t = type_part
        .trim()
        .trim_start_matches('&')
        .trim_start_matches("mut ")
        .trim_start_matches("dyn ")
        .trim();
    let t = t.split('<').next().unwrap_or(t).trim();
    t.rsplit("::").next().unwrap_or(t).trim().to_string()
}

fn matching_brace(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, &b) in bytes[open..].iter().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Rust keywords and call-like constructs that look like `name(` but are
/// never workspace function calls.
const NOT_CALLS: &[&str] = &[
    "if", "while", "match", "for", "return", "in", "as", "loop", "move", "fn", "let", "else",
    "impl", "where", "unsafe", "dyn", "ref", "mut", "box", "await", "true", "false", "self",
    "Self", "super", "crate", "pub", "use", "mod", "const", "static", "type", "struct", "enum",
    "trait",
];

/// Method names so common on std containers, atomics, iterators, and sync
/// primitives that a bare `.name(` call carries no resolution signal:
/// linking them to same-named workspace impl fns produces phantom edges
/// (`Vec::push` → `Tape::push`, `HashMap::insert` → `TemporalGraph::insert`,
/// `AtomicU64::load` → `TgatParams::load`, `Vec::drain` → `TgServer::drain`,
/// `Condvar::wait` → `Slot::wait`). Skipped during `Method` resolution
/// only — `Qualified` calls (`Tape::push(...)`) still resolve, and the
/// allocation/panic/blocking patterns themselves are still matched
/// textually inside every body that stays reachable, so skipping the edge
/// drops phantom chains without hiding direct findings.
const UBIQUITOUS_METHODS: &[&str] = &[
    "clear", "clone", "contains", "contains_key", "drain", "extend", "get", "insert", "is_empty",
    "iter", "len", "load", "next", "push", "remove", "shape", "wait",
];

/// Name → candidate-node lookup shared by edge resolution and the effect
/// engine's guarded-call analysis (L13), so the two can never disagree
/// about what a call site resolves to.
pub(crate) struct Resolver<'n> {
    /// Self-type → method name → candidate nodes.
    by_qual_name: std::collections::BTreeMap<&'n str, std::collections::BTreeMap<&'n str, Vec<usize>>>,
    impl_by_name: std::collections::BTreeMap<&'n str, Vec<usize>>,
    free_by_name: std::collections::BTreeMap<&'n str, Vec<usize>>,
}

impl<'n> Resolver<'n> {
    pub(crate) fn new(nodes: &'n [FnNode]) -> Self {
        let mut by_qual_name: std::collections::BTreeMap<
            &str,
            std::collections::BTreeMap<&str, Vec<usize>>,
        > = std::collections::BTreeMap::new();
        let mut impl_by_name: std::collections::BTreeMap<&str, Vec<usize>> =
            std::collections::BTreeMap::new();
        let mut free_by_name: std::collections::BTreeMap<&str, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            match &n.qual {
                Some(q) => {
                    by_qual_name
                        .entry(q.as_str())
                        .or_default()
                        .entry(n.name.as_str())
                        .or_default()
                        .push(i);
                    impl_by_name.entry(n.name.as_str()).or_default().push(i);
                }
                None => free_by_name.entry(n.name.as_str()).or_default().push(i),
            }
        }
        Self { by_qual_name, impl_by_name, free_by_name }
    }

    /// Candidate callee indices for one call site inside `caller`.
    pub(crate) fn targets(
        &self,
        caller: &FnNode,
        kind: &CallKind,
        name: &str,
    ) -> Option<&Vec<usize>> {
        match kind {
            CallKind::Qualified(q) => {
                let q = if q == "Self" { caller.qual.as_deref().unwrap_or(q) } else { q };
                self.by_qual_name
                    .get(q)
                    .and_then(|methods| methods.get(name))
                    .or_else(|| self.free_by_name.get(name))
            }
            CallKind::Method if UBIQUITOUS_METHODS.contains(&name) => None,
            CallKind::Method => self.impl_by_name.get(name),
            CallKind::Bare => self.free_by_name.get(name),
        }
    }
}

/// Resolves every call site in every node body to candidate callee nodes.
fn resolve_edges(sources: &[SourceFile], nodes: &[FnNode]) -> Vec<Vec<usize>> {
    let resolver = Resolver::new(nodes);
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (i, node) in nodes.iter().enumerate() {
        let src = &sources[node.file];
        for (kind, name, _at) in call_sites(src, node.body) {
            if let Some(ts) = resolver.targets(node, &kind, &name) {
                edges[i].extend(ts.iter().copied().filter(|&t| t != i));
            }
        }
        edges[i].sort_unstable();
        edges[i].dedup();
    }
    edges
}

/// Scans a body span for call sites: every `(` preceded by an identifier
/// that is not a keyword, a macro name (`name!(`), or the `fn` declaration
/// itself, classified by the token before the identifier. The third tuple
/// element is the byte offset of the callee name (used by the effect
/// engine to intersect call sites with guard-liveness regions).
pub(crate) fn call_sites(src: &SourceFile, body: (usize, usize)) -> Vec<(CallKind, String, usize)> {
    let code = &src.code;
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for p in body.0..=body.1.min(bytes.len() - 1) {
        if bytes[p] != b'(' {
            continue;
        }
        // Identifier directly before the paren (no whitespace skip: Rust
        // call syntax puts the paren flush against the name).
        let end = p;
        let mut s = p;
        while s > body.0 && is_ident_byte(bytes[s - 1]) {
            s -= 1;
        }
        if s == end || bytes[s].is_ascii_digit() {
            continue;
        }
        let name = &code[s..end];
        if NOT_CALLS.contains(&name) {
            continue;
        }
        let before = &code[..s];
        let trimmed = before.trim_end();
        if trimmed.ends_with("fn") || before.ends_with('!') {
            continue; // declaration site or macro invocation
        }
        if before.ends_with('.') {
            out.push((CallKind::Method, name.to_string(), s));
        } else if before.ends_with("::") {
            // Qualifier segment before the `::`.
            let mut qs = s - 2;
            while qs > 0 && is_ident_byte(bytes[qs - 1]) {
                qs -= 1;
            }
            let qual = &code[qs..s - 2];
            if qual.is_empty() {
                continue; // `::<` turbofish or leading `::` path — skip
            }
            out.push((CallKind::Qualified(qual.to_string()), name.to_string(), s));
        } else {
            out.push((CallKind::Bare, name.to_string(), s));
        }
    }
    out
}

/// Occurrences of `pattern` inside `body`, word-bounded on the left when
/// the pattern starts with an identifier byte (`vec![` must not match
/// `my_vec![`; `.push(` needs no boundary — it starts at the dot).
pub(crate) fn body_matches(src: &SourceFile, body: (usize, usize), pattern: &str) -> Vec<usize> {
    let hay = &src.code[body.0..=body.1.min(src.code.len() - 1)];
    let bounded = pattern.as_bytes().first().is_some_and(|&b| is_ident_byte(b));
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(pattern) {
        let at = from + pos;
        from = at + 1;
        let abs = body.0 + at;
        if bounded && abs > 0 && is_ident_byte(src.code.as_bytes()[abs - 1]) {
            continue;
        }
        out.push(abs);
    }
    out
}

/// Non-literal slice-index sites in a body: `expr[i]` where the bracket
/// follows an identifier, `]`, or `)`, and the index is not a bare
/// integer literal or a full `..` range (which cannot be out of bounds).
pub(crate) fn slice_index_sites(src: &SourceFile, body: (usize, usize)) -> Vec<usize> {
    let bytes = src.code.as_bytes();
    let mut out = Vec::new();
    for p in body.0..=body.1.min(bytes.len() - 1) {
        if bytes[p] != b'[' {
            continue;
        }
        let prev = bytes[..p].iter().rposition(|b| !b.is_ascii_whitespace());
        let indexing = prev.is_some_and(|q| {
            is_ident_byte(bytes[q]) || bytes[q] == b']' || bytes[q] == b')'
        });
        if !indexing {
            continue; // array literal, attribute, or type syntax
        }
        let Some(close) = matching_bracket(bytes, p) else { continue };
        let inner = src.code[p + 1..close].trim();
        let literal = !inner.is_empty() && inner.bytes().all(|b| b.is_ascii_digit());
        if literal || inner == ".." {
            continue;
        }
        out.push(p);
    }
    out
}

fn matching_bracket(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, &b) in bytes[open..].iter().enumerate() {
        match b {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + j);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(src: &'static str) -> (Vec<SourceFile>, Vec<FnNode>, Vec<Vec<usize>>) {
        let sources = vec![SourceFile::parse("t.rs", src)];
        let g = CallGraph::build(&sources);
        let (nodes, edges) = (g.nodes.clone(), g.edges.clone());
        (sources, nodes, edges)
    }

    fn idx(nodes: &[FnNode], label: &str) -> usize {
        nodes
            .iter()
            .position(|n| n.label() == label)
            .unwrap_or_else(|| panic!("no node {label}: {:?}", nodes.iter().map(FnNode::label).collect::<Vec<_>>()))
    }

    #[test]
    fn impl_trait_in_signature_is_not_an_impl_block() {
        let src = "fn f(g: impl Fn(u32) -> f32) -> impl Iterator<Item = u32> {\n    std::iter::empty()\n}\nstruct S;\nimpl S { fn m(&self) {} }\n";
        let f = SourceFile::parse("t.rs", src);
        let impls = extract_impl_blocks(&f);
        assert_eq!(impls.len(), 1);
        assert_eq!(impls[0].self_type, "S");
    }

    #[test]
    fn trait_impl_records_both_names() {
        let src = "impl std::fmt::Display for TgError { fn fmt(&self) {} }\n";
        let f = SourceFile::parse("t.rs", src);
        let impls = extract_impl_blocks(&f);
        assert_eq!(impls[0].self_type, "TgError");
        assert_eq!(impls[0].trait_name.as_deref(), Some("Display"));
    }

    #[test]
    fn qualified_and_method_calls_resolve() {
        let src = "struct A;\nimpl A {\n    fn top(&self) { self.step(); A::assoc(); helper(); }\n    fn step(&self) {}\n    fn assoc() {}\n}\nfn helper() {}\n";
        let (_s, nodes, edges) = graph_of(src);
        let top = idx(&nodes, "A::top");
        let outs: Vec<String> = edges[top].iter().map(|&j| nodes[j].label()).collect();
        assert!(outs.contains(&"A::step".to_string()), "{outs:?}");
        assert!(outs.contains(&"A::assoc".to_string()), "{outs:?}");
        assert!(outs.contains(&"helper".to_string()), "{outs:?}");
    }

    #[test]
    fn self_qualifier_resolves_to_enclosing_impl() {
        let src = "struct A;\nimpl A {\n    fn top(&self) { Self::assoc(); }\n    fn assoc() {}\n}\nstruct B;\nimpl B { fn assoc() {} }\n";
        let (_s, nodes, edges) = graph_of(src);
        let top = idx(&nodes, "A::top");
        let outs: Vec<String> = edges[top].iter().map(|&j| nodes[j].label()).collect();
        assert_eq!(outs, vec!["A::assoc".to_string()], "Self:: must not alias B::assoc");
    }

    #[test]
    fn reachability_stops_at_cold_path_fns() {
        let src = "// hot-path-root\nfn root() { warm(); setup(); }\nfn warm() { deep(); }\nfn deep() {}\n// cold-path: runs once at startup\nfn setup() { cold_leaf(); }\nfn cold_leaf() {}\n";
        let sources = vec![SourceFile::parse("t.rs", src)];
        let g = CallGraph::build(&sources);
        let reach = g.reachable(RootKind::seeds_alloc);
        assert!(reach[idx(&g.nodes, "warm")].is_some());
        assert!(reach[idx(&g.nodes, "deep")].is_some());
        assert!(reach[idx(&g.nodes, "setup")].is_none(), "cold fn must be pruned");
        assert!(reach[idx(&g.nodes, "cold_leaf")].is_none());
    }

    #[test]
    fn l9_fires_transitively_and_honors_alloc_ok() {
        let src = "// hot-path-root(alloc)\nfn root() { inner(); }\nfn inner() {\n    let v = Vec::with_capacity(8);\n    let w = Vec::with_capacity(8); // alloc-ok: grows once, then reused\n}\n";
        let sources = vec![SourceFile::parse("t.rs", src)];
        let g = CallGraph::build(&sources);
        let f = g.lint_hot_path_alloc_bfs();
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
        assert!(f[0].message.contains("root → inner"), "{}", f[0].message);
    }

    #[test]
    fn l10_fires_on_unwrap_reachable_from_serve_root() {
        let src = "// hot-path-root(serve)\nfn handle() { step(); }\nfn step() { parse().unwrap(); }\nfn parse() -> Option<u32> { None }\nfn unrelated() { other().unwrap(); }\nfn other() -> Option<u32> { None }\n";
        let sources = vec![SourceFile::parse("t.rs", src)];
        let g = CallGraph::build(&sources);
        let f = g.lint_panic_reach_bfs();
        assert_eq!(f.len(), 1, "unreachable unwrap must not fire: {f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn slice_literal_and_full_range_are_not_index_findings() {
        let src = "fn f(xs: &[f32], i: usize) { let _ = xs[0]; let _ = &xs[..]; let _ = xs[i]; }\n";
        let f = SourceFile::parse("crates/serve/src/t.rs", src);
        let sites = slice_index_sites(&f, (0, f.code.len() - 1));
        assert_eq!(sites.len(), 1, "only xs[i] is a finding");
    }

    #[test]
    fn dot_output_mentions_reachable_nodes_only() {
        let src = "// hot-path-root\nfn root() { warm(); }\nfn warm() {}\nfn stray() {}\n";
        let sources = vec![SourceFile::parse("t.rs", src)];
        let g = CallGraph::build(&sources);
        let dot = g.render_dot();
        assert!(dot.contains("root"));
        assert!(dot.contains("warm"));
        assert!(!dot.contains("stray"));
    }
}
