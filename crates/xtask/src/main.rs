//! CLI for the workspace lints: `cargo run -p tg-xtask -- lint`.
//!
//! Exit codes: 0 = clean, 1 = findings, 2 = usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
Usage: cargo run -p tg-xtask -- lint [--format text|json] [--root PATH]

Runs the repo's static-analysis suite over the workspace library crates
(src/, src/bin/, tests/) and the root integration suite:

  L1 panic               L5 lock-order        (per-crate acquisition graph)
  L2 lossy-cast          L6 atomics           (Relaxed control signals, torn RMW)
  L3 std-hash            L7 lock-across       (guards held across expensive calls)
  L4 missing-invariants  L8 unguarded-counter (accounting bypassing snapshot/merge)

The canonical lock order and the control-atomics list live in
concurrency.toml at the workspace root. See DESIGN.md \"Error handling &
lint policy\" and \"Concurrency model\" for what each lint means and the
`// lint: allow(<name>, <reason>)` / `// relaxed-ok: <reason>` escape
hatches.";

enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {}
        Some("-h") | Some("--help") => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("error: expected the `lint` subcommand, got {other:?}\n{USAGE}");
            return ExitCode::from(2);
        }
    }
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!("error: --format takes `text` or `json`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown flag {other}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.map_or_else(find_workspace_root, Ok) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match tg_xtask::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: lint walk failed: {e}");
            return ExitCode::from(2);
        }
    };
    match format {
        Format::Text => print!("{}", tg_xtask::render_text(&report)),
        Format::Json => println!("{}", tg_xtask::render_json(&report)),
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Walks up from the current directory to the first `Cargo.toml` declaring
/// `[workspace]`.
fn find_workspace_root() -> Result<PathBuf, String> {
    let start = std::env::current_dir().map_err(|e| e.to_string())?;
    let mut dir: &Path = &start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
            if text.contains("[workspace]") {
                return Ok(dir.to_path_buf());
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => {
                return Err(format!(
                    "no workspace Cargo.toml above {} (pass --root)",
                    start.display()
                ))
            }
        }
    }
}
