//! CLI for the workspace lints: `cargo run -p tg-xtask -- lint`, the
//! call-graph inspector `cargo run -p tg-xtask -- callgraph`, and the
//! effect-summary dump `cargo run -p tg-xtask -- effects`.
//!
//! Exit codes: 0 = clean, 1 = findings (`lint` only), 2 = usage or I/O
//! error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
Usage: cargo run -p tg-xtask -- lint [--format text|json] [--root PATH]
       cargo run -p tg-xtask -- callgraph [--format json|dot] [--root PATH]
       cargo run -p tg-xtask -- effects [--format json|lock] [--root PATH]

`lint` runs the repo's static-analysis suite over the workspace library
crates (src/, src/bin/, tests/), the harness code (examples/, bench
binaries), and the root integration suite:

  L1 panic               L5 lock-order        (per-crate acquisition graph)
  L2 lossy-cast          L6 atomics           (Relaxed control signals, torn RMW)
  L3 std-hash            L7 lock-across       (guards held across expensive calls)
  L4 missing-invariants  L8 unguarded-counter (accounting bypassing snapshot/merge)
  L9 hot-path-alloc      L10 panic-reach      (effect-summary reachability from
                                               `// hot-path-root` annotations)
  L11 float-determinism  L12 error-coverage   (TgError constructed AND matched)
  L13 lock-held-effects  L14 deadline-safety  (transitive effects under guards /
                                               unbounded waits on the serve path)
  L15 unsafe-audit       L16 effects-drift    (`// safety:` justifications /
                                               summaries vs committed effects.lock)

`callgraph` dumps the reachability graph itself: `--format json` for the
full function/edge listing, `--format dot` for a Graphviz view of the
hot-path closures.

`effects` dumps the transitive effect summary of every hot-path root:
`--format json` for the CI artifact, `--format lock` for the exact text
committed as effects.lock (regenerate in place with
UPDATE_EFFECTS_LOCK=1 cargo run -q -p tg-xtask -- lint).

The canonical lock order, control-atomics list, and alloc-free lock set
live in concurrency.toml at the workspace root. See DESIGN.md \"Error
handling & lint policy\", \"Concurrency model\", and \"Effect inference
(L13-L16)\" for what each lint means and the
`// lint: allow(<name>, <reason>)` / `// relaxed-ok: <reason>` /
`// alloc-ok: <reason>` / `// cold-path: <reason>` / `// safety: <reason>`
/ `// bounded-by: <reason>` escape hatches.";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let command = match args.next().as_deref() {
        Some("lint") => Cmd::Lint,
        Some("callgraph") => Cmd::Callgraph,
        Some("effects") => Cmd::Effects,
        Some("-h") | Some("--help") => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("error: expected `lint`, `callgraph`, or `effects`, got {other:?}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut format: Option<String> = None;
    let mut root: Option<PathBuf> = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--format" => match args.next() {
                Some(f) => format = Some(f),
                None => {
                    eprintln!("error: --format needs a value");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown flag {other}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.map_or_else(find_workspace_root, Ok) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match command {
        Cmd::Lint => run_lint(&root, format.as_deref()),
        Cmd::Callgraph => run_callgraph(&root, format.as_deref()),
        Cmd::Effects => run_effects(&root, format.as_deref()),
    }
}

enum Cmd {
    Lint,
    Callgraph,
    Effects,
}

fn run_lint(root: &Path, format: Option<&str>) -> ExitCode {
    let json = match format {
        None | Some("text") => false,
        Some("json") => true,
        other => {
            eprintln!("error: lint --format takes `text` or `json`, got {other:?}");
            return ExitCode::from(2);
        }
    };
    let report = match tg_xtask::lint_workspace(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: lint walk failed: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", tg_xtask::render_json(&report));
    } else {
        print!("{}", tg_xtask::render_text(&report));
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn run_callgraph(root: &Path, format: Option<&str>) -> ExitCode {
    let dot = match format {
        None | Some("json") => false,
        Some("dot") => true,
        other => {
            eprintln!("error: callgraph --format takes `json` or `dot`, got {other:?}");
            return ExitCode::from(2);
        }
    };
    let sources = match tg_xtask::workspace_graph_sources(root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: callgraph walk failed: {e}");
            return ExitCode::from(2);
        }
    };
    let graph = tg_xtask::CallGraph::build(&sources);
    if dot {
        print!("{}", graph.render_dot());
    } else {
        println!("{}", graph.render_json());
    }
    ExitCode::SUCCESS
}

fn run_effects(root: &Path, format: Option<&str>) -> ExitCode {
    let lock = match format {
        None | Some("json") => false,
        Some("lock") => true,
        other => {
            eprintln!("error: effects --format takes `json` or `lock`, got {other:?}");
            return ExitCode::from(2);
        }
    };
    let sources = match tg_xtask::workspace_graph_sources(root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: effects walk failed: {e}");
            return ExitCode::from(2);
        }
    };
    let engine = tg_xtask::EffectEngine::build(&sources);
    if lock {
        print!("{}", tg_xtask::effects::serialize_lock(&engine.root_summaries()));
    } else {
        println!("{}", engine.render_json());
    }
    ExitCode::SUCCESS
}

/// Walks up from the current directory to the first `Cargo.toml` declaring
/// `[workspace]`.
fn find_workspace_root() -> Result<PathBuf, String> {
    let start = std::env::current_dir().map_err(|e| e.to_string())?;
    let mut dir: &Path = &start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
            if text.contains("[workspace]") {
                return Ok(dir.to_path_buf());
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => {
                return Err(format!(
                    "no workspace Cargo.toml above {} (pass --root)",
                    start.display()
                ))
            }
        }
    }
}
