#!/usr/bin/env bash
# Pre-PR gate: everything a change must pass before review.
#
#   ./scripts/check.sh
#
# Runs, in order:
#   1. cargo build --release        — the workspace compiles with optimizations
#   2. cargo test -q --workspace    — every crate's unit + integration tests
#      (includes the streaming-ingest suites: tests/prop_streaming.rs,
#      the seeded interleaving equivalence battery, and
#      tests/streaming_stress.rs, real concurrent ingest+query workers)
#   3. cargo run -p tg-xtask -- lint — the repo's static-analysis suite
#      (L1 panic, L2 lossy-cast, L3 std-hash, L4 missing-invariants; the
#      concurrency rules L5 lock-order, L6 atomics, L7 lock-across,
#      L8 unguarded-counter; the call-graph reachability rules
#      L9 hot-path-alloc, L10 panic-reach, L11 float-determinism,
#      L12 error-coverage; and the effect-inference rules
#      L13 lock-held-effects, L14 deadline-safety, L15 unsafe-audit,
#      L16 effects-drift against the committed effects.lock; see
#      DESIGN.md "Error handling & lint policy", "Concurrency model",
#      "Call-graph reachability (L9-L12)", and
#      "Effect inference (L13-L16)")
#   4. streaming --verify           — live-ingest served rows vs cold
#      rebuild (the blocking half of the streaming smoke bench in CI)
#   5. serve --shards 4 --verify    — sharded router rows vs a direct
#      engine (the blocking half of the sharded smoke bench in CI)
#
# The lint also runs inside `cargo test` via tests/lint_gate.rs, so step 3
# is technically redundant — but running it standalone gives file:line
# output (and `--format json` for CI) without a test harness around it.
#
# Not run here (separate CI jobs, both seconds-to-minutes): the loom
# concurrency models —
#   RUSTFLAGS="--cfg loom" cargo test --test loom_concurrency --release
# (a different RUSTFLAGS fingerprint rebuilds the whole workspace, so it
# stays out of the inner dev loop) — and nightly `cargo miri test`.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo run -p tg-xtask -- lint"
cargo run --release -q -p tg-xtask -- lint

# Streaming-ingest equivalence gate (mirrors the blocking CI step): serve
# from a live graph while ingesting the whole tail, then check served
# rows against a cold rebuild. Exits nonzero on divergence.
echo "==> streaming --verify"
cargo build --release -q -p tg-bench
./target/release/streaming --verify >/dev/null

# Sharding equivalence gate (mirrors the blocking CI step): replay the
# query stream through a 4-shard deterministic router and check every row
# against a direct engine. Exits nonzero on divergence.
echo "==> serve --shards 4 --verify"
./target/release/serve -d snap-msg --scale 0.02 --clients 2 --requests 200 \
  --shards 4 --verify >/dev/null

echo "==> all checks passed"
