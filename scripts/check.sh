#!/usr/bin/env bash
# Pre-PR gate: everything a change must pass before review.
#
#   ./scripts/check.sh
#
# Runs, in order:
#   1. cargo build --release        — the workspace compiles with optimizations
#   2. cargo test -q --workspace    — every crate's unit + integration tests
#   3. cargo run -p tg-xtask -- lint — the repo's static-analysis suite
#      (L1 panic, L2 lossy-cast, L3 std-hash, L4 missing-invariants; see
#      DESIGN.md "Error handling & lint policy")
#
# The lint also runs inside `cargo test` via tests/lint_gate.rs, so step 3
# is technically redundant — but running it standalone gives file:line
# output (and `--format json` for CI) without a test harness around it.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo run -p tg-xtask -- lint"
cargo run --release -q -p tg-xtask -- lint

echo "==> all checks passed"
