//! Offline shim for the `serde` crate.
//!
//! Instead of serde's visitor-driven data model, this shim funnels every
//! serialization through one dynamically-typed [`Value`] tree: a
//! [`Serializer`] accepts a finished `Value`, a [`Deserializer`] hands one
//! back. The public trait *signatures* mirror real serde closely enough
//! that the workspace's hand-written impls (e.g. `Tensor`'s tuple codec)
//! and `#[derive(Serialize, Deserialize)]` sites compile unchanged.

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The dynamically-typed tree every (de)serialization passes through.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON null / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer (negative values).
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (arrays, tuples, `Vec`).
    Seq(Vec<Value>),
    /// Map with string keys, in insertion order (structs).
    Map(Vec<(String, Value)>),
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// The concrete error used by [`to_value`] / [`from_value`].
#[derive(Clone, Debug)]
pub struct ValueError {
    msg: String,
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for ValueError {}

impl ser::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError { msg: msg.to_string() }
    }
}

impl de::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError { msg: msg.to_string() }
    }
}

/// Serialization-side traits and errors.
pub mod ser {
    use std::fmt;

    /// Error constraint for [`crate::Serializer`] implementations.
    pub trait Error: Sized + fmt::Debug + fmt::Display {
        /// Builds an error from an arbitrary message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }
}

/// Deserialization-side traits and errors.
pub mod de {
    use std::fmt;

    /// Error constraint for [`crate::Deserializer`] implementations.
    pub trait Error: Sized + fmt::Debug + fmt::Display {
        /// Builds an error from an arbitrary message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }
}

/// A data format that can consume one [`Value`].
pub trait Serializer: Sized {
    /// What a successful serialization yields.
    type Ok;
    /// Serializer-specific error.
    type Error: ser::Error;

    /// Accepts the fully-built value tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A data format that can produce one [`Value`].
pub trait Deserializer<'de>: Sized {
    /// Deserializer-specific error.
    type Error: de::Error;

    /// Yields the value tree to decode from.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// Types expressible as a [`Value`].
pub trait Serialize {
    /// Feeds `self` to `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize<'de>: Sized {
    /// Rebuilds `Self` from `deserializer`'s value.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Deserializable from any lifetime (all shim values are owned anyway).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// A [`Serializer`] whose output *is* the [`Value`] tree.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = ValueError;

    fn serialize_value(self, value: Value) -> Result<Value, ValueError> {
        Ok(value)
    }
}

/// A [`Deserializer`] reading from an in-memory [`Value`] tree.
pub struct ValueDeserializer {
    value: Value,
}

impl ValueDeserializer {
    /// Wraps an existing value for decoding.
    pub fn new(value: Value) -> Self {
        Self { value }
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = ValueError;

    fn take_value(self) -> Result<Value, ValueError> {
        Ok(self.value)
    }
}

/// Serializes any `T` into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, ValueError> {
    value.serialize(ValueSerializer)
}

/// Deserializes any `T` out of a [`Value`] tree.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, ValueError> {
    T::deserialize(ValueDeserializer::new(value))
}

/// Removes the named field from a decoded struct map (derive support).
pub fn take_field<T: DeserializeOwned>(
    fields: &mut Vec<(String, Value)>,
    name: &str,
) -> Result<T, ValueError> {
    let idx = fields
        .iter()
        .position(|(k, _)| k == name)
        .ok_or_else(|| <ValueError as de::Error>::custom(format!("missing field `{name}`")))?;
    let (_, v) = fields.swap_remove(idx);
    from_value(v)
}

// ---------------------------------------------------------------------------
// Serialize impls for the primitives and containers the workspace uses.
// ---------------------------------------------------------------------------

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::U64(*self as u64))
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let v = *self as i64;
                let value = if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) };
                serializer.serialize_value(value)
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // f32 -> f64 is exact, so JSON round-trips bit-for-bit.
        serializer.serialize_value(Value::F64(*self as f64))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::F64(*self))
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Bool(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.clone()))
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Null)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_value(Value::Null),
            Some(v) => v.serialize(serializer),
        }
    }
}

fn seq_to_values<S: Serializer, T: Serialize>(items: &[T]) -> Result<Vec<Value>, S::Error> {
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        out.push(to_value(item).map_err(<S::Error as ser::Error>::custom)?);
    }
    Ok(out)
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let items = seq_to_values::<S, T>(self)?;
        serializer.serialize_value(Value::Seq(items))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Box<[T]> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let items = vec![
                    $(to_value(&self.$idx).map_err(<S::Error as ser::Error>::custom)?,)+
                ];
                serializer.serialize_value(Value::Seq(items))
            }
        }
    )*};
}
impl_serialize_tuple! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// ---------------------------------------------------------------------------
// Deserialize impls.
// ---------------------------------------------------------------------------

fn int_from_value<D: de::Error>(value: Value, what: &str) -> Result<i128, D> {
    match value {
        Value::U64(v) => Ok(v as i128),
        Value::I64(v) => Ok(v as i128),
        other => Err(D::custom(format!("expected {what}, found {}", other.kind()))),
    }
}

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let raw = int_from_value::<D::Error>(deserializer.take_value()?, stringify!($t))?;
                <$t>::try_from(raw).map_err(|_| {
                    <D::Error as de::Error>::custom(format!(
                        "integer {raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
impl_deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn float_from_value<D: de::Error>(value: Value) -> Result<f64, D> {
    match value {
        Value::F64(v) => Ok(v),
        // Integral floats serialize without a decimal point; coerce back.
        Value::U64(v) => Ok(v as f64),
        Value::I64(v) => Ok(v as f64),
        other => Err(D::custom(format!("expected float, found {}", other.kind()))),
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        float_from_value::<D::Error>(deserializer.take_value()?)
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        // The f64 holds an exactly-representable f32, so this narrowing is
        // exact for values written by this shim.
        Ok(float_from_value::<D::Error>(deserializer.take_value()?)? as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(<D::Error as de::Error>::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Str(s) => Ok(s),
            other => Err(<D::Error as de::Error>::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Null => Ok(()),
            other => Err(<D::Error as de::Error>::custom(format!(
                "expected null, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Null => Ok(None),
            other => from_value(other)
                .map(Some)
                .map_err(<D::Error as de::Error>::custom),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Seq(items) => items
                .into_iter()
                .map(|v| from_value(v).map_err(<D::Error as de::Error>::custom))
                .collect(),
            other => Err(<D::Error as de::Error>::custom(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Box<[T]> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(deserializer).map(Vec::into_boxed_slice)
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($len:literal; $($name:ident),+))*) => {$(
        impl<'de, $($name: DeserializeOwned),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.take_value()? {
                    Value::Seq(items) if items.len() == $len => {
                        let mut it = items.into_iter();
                        Ok(($(
                            from_value::<$name>(match it.next() {
                                Some(v) => v,
                                None => Value::Null,
                            })
                            .map_err(<D::Error as de::Error>::custom)?,
                        )+))
                    }
                    Value::Seq(items) => Err(<D::Error as de::Error>::custom(format!(
                        "expected sequence of length {}, found length {}",
                        $len,
                        items.len()
                    ))),
                    other => Err(<D::Error as de::Error>::custom(format!(
                        "expected sequence, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_deserialize_tuple! {
    (2; T0, T1)
    (3; T0, T1, T2)
    (4; T0, T1, T2, T3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let v = to_value(&42usize).unwrap();
        assert_eq!(from_value::<usize>(v).unwrap(), 42);
        let v = to_value(&-3i64).unwrap();
        assert_eq!(from_value::<i64>(v).unwrap(), -3);
        let v = to_value(&1.5f32).unwrap();
        assert_eq!(from_value::<f32>(v).unwrap(), 1.5);
        let v = to_value(&"hi".to_string()).unwrap();
        assert_eq!(from_value::<String>(v).unwrap(), "hi");
    }

    #[test]
    fn tuples_and_vecs_round_trip() {
        let orig = (3usize, 2usize, vec![1.0f32, 2.0, 3.0]);
        let v = to_value(&(orig.0, orig.1, &orig.2)).unwrap();
        let back: (usize, usize, Vec<f32>) = from_value(v).unwrap();
        assert_eq!(back, orig);
    }

    #[test]
    fn float_coerces_from_integer_value() {
        assert_eq!(from_value::<f32>(Value::U64(2)).unwrap(), 2.0);
        assert_eq!(from_value::<f64>(Value::I64(-2)).unwrap(), -2.0);
    }

    #[test]
    fn take_field_reports_missing() {
        let mut fields = vec![("a".to_string(), Value::U64(1))];
        assert_eq!(take_field::<u64>(&mut fields, "a").unwrap(), 1);
        assert!(take_field::<u64>(&mut fields, "b").is_err());
    }
}
