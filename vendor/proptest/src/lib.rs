//! Offline shim for the `proptest` crate.
//!
//! Keeps the surface the workspace's property tests use — `proptest!`,
//! `prop_assert*`, range/tuple/`collection::vec` strategies, `any`,
//! `prop_map`/`prop_flat_map`, `ProptestConfig::with_cases` — but runs each
//! case from a deterministic per-test RNG instead of real proptest's
//! shrinking search. Failures report the case number; re-running the same
//! binary reproduces them exactly.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Test-runner plumbing: config, errors, and the per-case RNG.
pub mod test_runner {
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// Per-test configuration (shim: only the case count).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// A failed property case.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self { msg: msg.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Outcome of one property case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic RNG handed to strategies for one case.
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// RNG for case number `case` of the test whose name hashed to
        /// `test_seed`. Reproducible across runs and platforms.
        pub fn for_case(test_seed: u64, case: u32) -> Self {
            let mixed = test_seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            Self { inner: StdRng::seed_from_u64(mixed) }
        }

        pub(crate) fn gen_range<T, R>(&mut self, range: R) -> T
        where
            T: rand::SampleUniform,
            R: rand::SampleRange<T>,
        {
            self.inner.gen_range(range)
        }

        pub(crate) fn gen<T: rand::Standard>(&mut self) -> T {
            self.inner.gen()
        }
    }
}

use test_runner::TestRng;

/// A recipe for producing random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value for the current case.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms produced values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Builds a dependent strategy from each produced value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        let intermediate = self.source.generate(rng);
        (self.f)(intermediate).generate(rng)
    }
}

impl<T: rand::SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: rand::SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Strategy for any value of `T`'s standard distribution.
pub struct Any<T>(PhantomData<T>);

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen::<T>()
    }
}

/// The full standard distribution of `T` (`proptest::prelude::any`).
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec`]: a fixed size or a (half-open/inclusive)
    /// range of sizes.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (min, max) = r.into_inner();
            assert!(min <= max, "empty vec size range");
            Self { min, max }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob import the property tests use.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $($(#[$attr:meta])*
       fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {$(
        $(#[$attr])*
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            // FNV-1a over the fully-qualified test name: a stable per-test
            // seed so every case is reproducible run-to-run.
            let mut test_seed: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in concat!(module_path!(), "::", stringify!($name)).bytes() {
                test_seed = (test_seed ^ byte as u64).wrapping_mul(0x100_0000_01b3);
            }
            for case in 0..config.cases {
                let mut proptest_rng =
                    $crate::test_runner::TestRng::for_case(test_seed, case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut proptest_rng);)*
                let outcome: $crate::test_runner::TestCaseResult = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!("property `{}` failed at case {case}: {err}", stringify!($name));
                }
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "assertion failed: `{:?} == {:?}`", l, r
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "assertion failed: `{:?} == {:?}`: {}", l, r, format!($($fmt)+)
                        )),
                    );
                }
            }
        }
    };
}

/// Fails the current case unless the operands compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "assertion failed: `{:?} != {:?}`", l, r
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "assertion failed: `{:?} != {:?}`: {}", l, r, format!($($fmt)+)
                        )),
                    );
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        fn ranges_and_vecs((a, b) in (0u32..10, 1usize..=3), v in crate::collection::vec(0.0f32..1.0, 2..5)) {
            prop_assert!(a < 10);
            prop_assert!((1..=3).contains(&b));
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        fn maps_compose(n in (1usize..4).prop_flat_map(|n| crate::collection::vec(0u32..5, n).prop_map(move |v| (n, v)))) {
            let (len, v) = n;
            prop_assert_eq!(v.len(), len);
        }

        fn early_return_works(x in 0u32..10) {
            if x < 10 {
                return Ok(());
            }
            prop_assert!(false, "unreachable: {x}");
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case(42, 7);
        let mut b = crate::test_runner::TestRng::for_case(42, 7);
        let x: u64 = a.gen();
        let y: u64 = b.gen();
        assert_eq!(x, y);
    }
}
