//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! Provides `rngs::StdRng`, the `Rng`/`SeedableRng` traits and
//! `rand::random`, backed by xoshiro256** seeded through SplitMix64. The
//! stream differs from the real `StdRng` (ChaCha12); everything in this
//! workspace only relies on *seed-determinism*, not on a specific stream.

use std::ops::{Range, RangeInclusive};

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Pseudo-random generation methods. Implemented by [`rngs::StdRng`].
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample of `T`'s standard distribution (`[0, 1)` for
    /// floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(&mut || self.next_u64())
    }

    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>;

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_seed(seed: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed into 256 bits of state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Self { s }
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// RNG types.
pub mod rngs {
    use super::*;

    /// The workspace's standard seeded RNG (shim: xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) core: Xoshiro256,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { core: Xoshiro256::from_seed(seed) }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.core.next()
        }

        fn gen<T: Standard>(&mut self) -> T {
            let core = &mut self.core;
            T::sample_standard(&mut || core.next())
        }

        fn gen_range<T, R>(&mut self, range: R) -> T
        where
            T: SampleUniform,
            R: SampleRange<T>,
        {
            range.sample_from(self)
        }

        fn gen_bool(&mut self, p: f64) -> bool {
            debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
            unit_f64(self.next_u64()) < p
        }
    }
}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn unit_f32(bits: u64) -> f32 {
    // 24 high bits -> [0, 1).
    (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// Types with a "standard" distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one sample given a 64-bit entropy source.
    fn sample_standard(bits: &mut dyn FnMut() -> u64) -> Self;
}

impl Standard for f64 {
    fn sample_standard(bits: &mut dyn FnMut() -> u64) -> Self {
        unit_f64(bits())
    }
}

impl Standard for f32 {
    fn sample_standard(bits: &mut dyn FnMut() -> u64) -> Self {
        unit_f32(bits())
    }
}

impl Standard for bool {
    fn sample_standard(bits: &mut dyn FnMut() -> u64) -> Self {
        bits() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard(bits: &mut dyn FnMut() -> u64) -> Self {
                bits() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types uniformly sampleable from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_between(rng: &mut rngs::StdRng, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between(rng: &mut rngs::StdRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                assert!(lo < hi || (inclusive && lo <= hi), "empty sample range");
                let span = (hi as u128).wrapping_sub(lo as u128)
                    + if inclusive { 1 } else { 0 };
                // Modulo bias is < 2^-64 per draw for the spans used here.
                let r = ((rng.next_u64() as u128) % span) as $t;
                lo.wrapping_add(r)
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between(rng: &mut rngs::StdRng, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo < hi || lo == hi, "empty sample range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

impl SampleUniform for f32 {
    fn sample_between(rng: &mut rngs::StdRng, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo < hi || lo == hi, "empty sample range");
        lo + (hi - lo) * unit_f32(rng.next_u64())
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws one sample from the range.
    fn sample_from(self, rng: &mut rngs::StdRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut rngs::StdRng) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut rngs::StdRng) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(rng, lo, hi, true)
    }
}

/// One sample of `T`'s standard distribution from ambient entropy
/// (system clock + a process-wide counter): NOT reproducible, used only
/// for things like temp-file names in tests.
pub fn random<T: Standard>() -> T {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let n = COUNTER.fetch_add(0x9E37_79B9, Ordering::Relaxed);
    let mut core = Xoshiro256::from_seed(nanos ^ (n.rotate_left(32)) ^ std::process::id() as u64);
    T::sample_standard(&mut || core.next())
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f32 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&v));
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!(u >= f64::EPSILON && u < 1.0);
            let i: usize = rng.gen_range(0..10);
            assert!(i < 10);
            let k: u64 = rng.gen_range(5u64..6);
            assert_eq!(k, 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn standard_samples_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }
}
