//! Offline std-only shim of the `loom` model-checking API.
//!
//! **What this is:** seeded randomized-interleaving *stress exploration*.
//! [`model`] runs the closure many times (`LOOM_ITERATIONS`, default 64)
//! with a different seed per iteration, and [`thread::spawn`] injects a
//! seeded burst of `yield_now` calls before each spawned closure runs, so
//! successive iterations start threads in different relative positions.
//!
//! **What this is not:** the real loom's exhaustive DPOR search. The real
//! crate intercepts every atomic/lock operation and systematically
//! enumerates all distinguishable interleavings; this shim perturbs the
//! OS scheduler and relies on iteration count for coverage. A passing run
//! here means "no violation found across N seeded schedules", not "no
//! violation exists". The API subset is source-compatible with loom, so
//! swapping in the real crate (in an environment with registry access)
//! needs no test changes.
//!
//! Implemented subset: [`model`], [`Builder::check`],
//! `thread::{spawn, yield_now, JoinHandle}`,
//! `sync::{Arc, Mutex, Condvar, RwLock, atomic::*}`, and
//! `hint::spin_loop`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Global xorshift* state, reseeded by [`model`] before each iteration.
static RNG_STATE: AtomicU64 = AtomicU64::new(0x9E37_79B9_7F4A_7C15);

/// Default iteration count when `LOOM_ITERATIONS` is unset.
pub const DEFAULT_ITERATIONS: usize = 64;

fn next_rand() -> u64 {
    // Lock-free xorshift64* over the shared state: collisions between
    // threads just perturb the stream further, which is the point.
    let mut x = RNG_STATE.load(Ordering::Relaxed);
    loop {
        let mut y = x ^ (x << 13);
        y ^= y >> 7;
        y ^= y << 17;
        match RNG_STATE.compare_exchange_weak(x, y, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return y.wrapping_mul(0x2545_F491_4F6C_DD1D),
            Err(cur) => x = cur,
        }
    }
}

/// Injects a seeded burst of scheduler yields (0–7), used at thread spawn
/// to vary the relative start order of racing threads across iterations.
fn jitter() {
    for _ in 0..(next_rand() % 8) {
        std::thread::yield_now();
    }
}

/// Number of iterations a [`model`] call performs: `LOOM_ITERATIONS` from
/// the environment (clamped to at least 1), else [`DEFAULT_ITERATIONS`].
pub fn iterations() -> usize {
    std::env::var("LOOM_ITERATIONS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(DEFAULT_ITERATIONS)
        .max(1)
}

/// Runs `f` once per iteration, reseeding the scheduler-jitter stream each
/// time so iterations explore different interleavings. Panics (assertion
/// failures inside `f`) propagate and fail the enclosing test.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    Builder::new().check(f)
}

/// Loom-compatible builder. Only the fields the tests touch exist; the
/// exploration strategy itself is fixed (see the crate docs).
#[derive(Clone, Debug, Default)]
pub struct Builder {
    /// Upper bound on iterations; `None` uses [`iterations`].
    pub max_iterations: Option<usize>,
}

impl Builder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs the model. See [`model`].
    pub fn check<F>(&self, f: F)
    where
        F: Fn() + Sync + Send + 'static,
    {
        let iters = self.max_iterations.unwrap_or_else(iterations).max(1);
        for i in 0..iters {
            RNG_STATE.store(
                0x9E37_79B9_7F4A_7C15 ^ (i as u64 + 1).wrapping_mul(0xA24B_AED4_963E_E407),
                Ordering::Relaxed,
            );
            f();
        }
    }
}

pub mod thread {
    pub use std::thread::JoinHandle;

    /// [`std::thread::spawn`] with a seeded yield burst in front of the
    /// closure, so racing threads start in different orders per iteration.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        std::thread::spawn(move || {
            super::jitter();
            f()
        })
    }

    pub fn yield_now() {
        std::thread::yield_now();
    }
}

pub mod sync {
    pub use std::sync::{
        Arc, Barrier, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
    };

    pub mod atomic {
        pub use std::sync::atomic::*;
    }
}

pub mod hint {
    pub fn spin_loop() {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn model_runs_the_default_iteration_count() {
        let runs = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&runs);
        Builder { max_iterations: Some(5) }.check(move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(runs.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn spawned_threads_join_with_their_results() {
        let t = thread::spawn(|| 41 + 1);
        assert_eq!(t.join().unwrap(), 42);
    }

    #[test]
    fn iterations_is_at_least_one() {
        assert!(iterations() >= 1);
    }

    #[test]
    fn rng_stream_advances() {
        let a = next_rand();
        let b = next_rand();
        assert_ne!(a, b);
    }
}
