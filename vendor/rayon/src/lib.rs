//! Offline shim for the `rayon` crate.
//!
//! The workspace only uses rayon's slice adapters (`par_iter`,
//! `par_iter_mut`, `par_chunks`, `par_chunks_mut`) followed by standard
//! iterator combinators. This shim maps each adapter to its sequential
//! `std::slice` counterpart, so every call site compiles unchanged and
//! produces identical results; it simply runs on one core. The engine code
//! already guards its parallel paths behind batch-size thresholds, so
//! semantics (and determinism tests) are unaffected.

/// Sequential stand-ins for `rayon::prelude`.
pub mod prelude {
    /// `par_*` accessors on shared slices.
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for `rayon`'s parallel iterator.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Sequential stand-in for parallel chunking.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    /// `par_*` accessors on mutable slices.
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in for `rayon`'s mutable parallel iterator.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        /// Sequential stand-in for mutable parallel chunking.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }

        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }

        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

/// Number of worker threads the real rayon pool would use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs both closures (sequentially here) and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn adapters_match_sequential_results() {
        let v = vec![1u32, 2, 3, 4, 5];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8, 10]);

        let mut out = vec![0u32; 4];
        out.par_chunks_mut(2).zip(v.par_chunks(2)).for_each(|(o, i)| {
            o[0] = i[0];
        });
        assert_eq!(out, vec![1, 0, 3, 0]);
    }

    #[test]
    fn join_returns_both() {
        assert_eq!(super::join(|| 1, || "x"), (1, "x"));
        assert!(super::current_num_threads() >= 1);
    }
}
