//! Offline shim for the `rustc-hash` crate.
//!
//! Implements the Fx (Firefox) hash algorithm over `std::collections`
//! containers. The registry is unreachable in this environment, so the
//! workspace patches `rustc-hash` to this std-only crate; the algorithm is
//! the same multiply-rotate word hash the real crate uses, which is what the
//! hot paths in `tgopt` were tuned against.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;
/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for small keys (integers, short tuples).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let mut w = [0u8; 8];
            w.copy_from_slice(c);
            self.add_to_hash(u64::from_le_bytes(w));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut w = [0u8; 8];
            w[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(w));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(7, "seven");
        m.insert(7 << 32, "big");
        assert_eq!(m.get(&7), Some(&"seven"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        let h = |x: u64| {
            let mut h = FxHasher::default();
            h.write_u64(x);
            h.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(1), h(2));
    }
}
