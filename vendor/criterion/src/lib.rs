//! Offline shim for the `criterion` crate.
//!
//! Runs each registered benchmark in a simple warm-up + timing loop and
//! prints mean time per iteration. No statistics, plotting, or baseline
//! comparison — enough to keep `cargo bench` compiling and producing
//! directionally useful numbers offline.

use std::time::{Duration, Instant};

/// Benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples to collect.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, group: name.into(), sample_size: None }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) -> &mut Self {
        let label = name.into();
        run_bench(&label, self.sample_size, self.warm_up_time, self.measurement_time, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) -> &mut Self {
        let label = format!("{}/{}", self.group, name.into());
        run_bench(
            &label,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            f,
        );
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.group, id.label);
        run_bench(
            &label,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// A function + parameter label for [`BenchmarkGroup::bench_with_input`].
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Label of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { label: format!("{}/{}", name.into(), parameter) }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    mut f: F,
) {
    // Warm-up: run single iterations until the warm-up budget is spent,
    // and use the observed speed to size the measured batches.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < warm_up || warm_iters == 0 {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        warm_iters += 1;
        if warm_iters >= 10_000 {
            break;
        }
    }
    let per_iter = warm_start.elapsed().checked_div(warm_iters as u32).unwrap_or_default();
    let budget_per_sample = measurement.checked_div(sample_size as u32).unwrap_or_default();
    let iters_per_sample = if per_iter.is_zero() {
        1_000
    } else {
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut total = Duration::ZERO;
    let mut total_iters: u64 = 0;
    for _ in 0..sample_size {
        let mut b = Bencher { iters: iters_per_sample, elapsed: Duration::ZERO };
        f(&mut b);
        total += b.elapsed;
        total_iters += b.iters;
    }
    let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    println!("bench {label:<40} {mean_ns:>12.1} ns/iter ({total_iters} iters)");
}

/// Declares a benchmark harness function from a config + target list.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running the given harness functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loop_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = 0u64;
        {
            let mut g = c.benchmark_group("smoke");
            g.sample_size(2);
            g.bench_function("noop", |b| b.iter(|| ran = ran.wrapping_add(1)));
            g.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &n| {
                b.iter(|| n * 2)
            });
            g.finish();
        }
        c.bench_function("top-level", |b| b.iter(|| 1 + 1));
        assert!(ran > 0);
    }
}
