//! Offline shim for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API
//! (`lock()` / `read()` / `write()` return guards directly). A poisoned
//! std lock only happens after a panic in a critical section; the shim
//! follows parking_lot semantics and hands out the inner data regardless,
//! since parking_lot has no concept of poisoning at all.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive (poison-free API).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Reader-writer lock (poison-free API).
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);

        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
