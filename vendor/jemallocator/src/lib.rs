//! Shim of the `jemallocator` crate (see `vendor/README.md`).
//!
//! The real crate links the bundled jemalloc C sources; no network and no
//! vendored C toolchain deps means this shim **cannot** provide jemalloc.
//! It exposes the same `Jemalloc` unit struct so the workspace's
//! `#[global_allocator]` plumbing (feature flags, bench reporting) is
//! real and switch-ready, but allocation behavior is *identical to the
//! system allocator* — it forwards every call to [`std::alloc::System`].
//!
//! Anything measuring the `jemalloc` feature must therefore report it as
//! `jemalloc-shim(system)`, never as the real allocator: an observed
//! delta would be noise, not jemalloc. Swapping in the real crate later
//! is a one-line `Cargo.toml` change; no call sites move.

use std::alloc::{GlobalAlloc, Layout, System};

/// Drop-in stand-in for `jemallocator::Jemalloc`; delegates to `System`.
pub struct Jemalloc;

// SAFETY: every method forwards verbatim to `System`, whose `GlobalAlloc`
// contract is upheld by std; the shim adds no state and no reentrancy.
unsafe impl GlobalAlloc for Jemalloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        System.realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_roundtrip_via_the_shim() {
        let layout = Layout::from_size_align(64, 8).unwrap();
        unsafe {
            let p = Jemalloc.alloc(layout);
            assert!(!p.is_null());
            p.write_bytes(0xAB, 64);
            assert_eq!(*p.add(63), 0xAB);
            let p = Jemalloc.realloc(p, layout, 128);
            assert!(!p.is_null());
            assert_eq!(*p.add(63), 0xAB, "realloc preserves contents");
            Jemalloc.dealloc(p, Layout::from_size_align(128, 8).unwrap());
        }
    }

    #[test]
    fn alloc_zeroed_is_zeroed() {
        let layout = Layout::from_size_align(32, 8).unwrap();
        unsafe {
            let p = Jemalloc.alloc_zeroed(layout);
            assert!(!p.is_null());
            assert!((0..32).all(|i| *p.add(i) == 0));
            Jemalloc.dealloc(p, layout);
        }
    }
}
