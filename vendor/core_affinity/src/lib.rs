//! Shim of the `core_affinity` crate (see `vendor/README.md`).
//!
//! The real crate wraps each platform's affinity API through `libc`. This
//! build environment has no crates.io route, so the shim issues the Linux
//! `sched_setaffinity` syscall directly (inline asm, x86_64 only) and
//! degrades to a documented no-op everywhere else. Pinning is therefore
//! *best-effort by contract*: callers must treat a `false` return as
//! "scheduler decides", never as an error — which is exactly how the
//! serving layer's `pin_cores` flag uses it.

/// Identifier of one logical CPU, mirroring the real crate's type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreId {
    pub id: usize,
}

/// The logical CPUs this process may schedule on. The real crate parses
/// the affinity mask; the shim assumes ids `0..available_parallelism()`,
/// which matches unrestricted processes (the bench/serve use case).
/// Returns `None` when parallelism cannot be queried.
pub fn get_core_ids() -> Option<Vec<CoreId>> {
    let n = std::thread::available_parallelism().ok()?.get();
    Some((0..n).map(|id| CoreId { id }).collect())
}

/// Pins the calling thread to `core`. Returns whether the kernel accepted
/// the mask; `false` means the thread keeps floating (non-Linux targets,
/// non-x86_64, an out-of-range id, or a restricted cpuset).
pub fn set_for_current(core: CoreId) -> bool {
    set_for_current_impl(core.id)
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn set_for_current_impl(id: usize) -> bool {
    // cpu_set_t is 1024 bits; ids past it cannot be expressed.
    let mut mask = [0u64; 16];
    if id >= mask.len() * 64 {
        return false;
    }
    mask[id / 64] = 1u64 << (id % 64);
    // sched_setaffinity(pid = 0 → current thread, sizeof mask, &mask).
    // Raw syscall because the shim must not depend on libc.
    let ret: isize;
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 203isize => ret, // __NR_sched_setaffinity
            in("rdi") 0usize,
            in("rsi") std::mem::size_of_val(&mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret == 0
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
fn set_for_current_impl(_id: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_ids_enumerate_available_parallelism() {
        let ids = get_core_ids().expect("parallelism queryable");
        assert!(!ids.is_empty());
        assert_eq!(ids[0], CoreId { id: 0 });
        for (i, c) in ids.iter().enumerate() {
            assert_eq!(c.id, i);
        }
    }

    #[test]
    fn pinning_to_core_zero_is_accepted_on_linux_x86_64() {
        let ok = set_for_current(CoreId { id: 0 });
        if cfg!(all(target_os = "linux", target_arch = "x86_64")) {
            assert!(ok, "core 0 must exist");
        } else {
            assert!(!ok, "non-Linux shim is a no-op");
        }
    }

    #[test]
    fn out_of_range_core_is_rejected_not_ub() {
        assert!(!set_for_current(CoreId { id: 1 << 20 }));
    }
}
