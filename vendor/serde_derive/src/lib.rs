//! Offline shim for `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls targeting the serde *shim*'s
//! Value-based data model. Built without syn/quote: the item is parsed by
//! walking raw `proc_macro::TokenTree`s and the impl is emitted as a
//! formatted string re-parsed into a `TokenStream`. Supports exactly what
//! this workspace derives: non-generic structs with named fields and
//! non-generic enums with unit variants.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum ItemKind {
    /// Named-field struct; the strings are field names in declaration order.
    Struct(Vec<String>),
    /// Unit-variant enum; the strings are variant names.
    Enum(Vec<String>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

/// Derives `serde::Serialize` via the shim's `Value` tree.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item.kind {
        ItemKind::Struct(fields) => gen_struct_serialize(&item.name, fields),
        ItemKind::Enum(variants) => gen_enum_serialize(&item.name, variants),
    };
    code.parse().expect("serde_derive shim produced unparsable Serialize impl")
}

/// Derives `serde::Deserialize` via the shim's `Value` tree.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item.kind {
        ItemKind::Struct(fields) => gen_struct_deserialize(&item.name, fields),
        ItemKind::Enum(variants) => gen_enum_deserialize(&item.name, variants),
    };
    code.parse().expect("serde_derive shim produced unparsable Deserialize impl")
}

// ---------------------------------------------------------------------------
// Item parsing.
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);

    let keyword = expect_ident(&toks, &mut i);
    if keyword != "struct" && keyword != "enum" {
        panic!("serde shim derive supports only `struct` and `enum`, found `{keyword}`");
    }
    let name = expect_ident(&toks, &mut i);
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic item `{name}`");
    }
    let body = match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde shim derive expects a braced body for `{name}`, found {other:?}"
        ),
    };
    let kind = if keyword == "struct" {
        ItemKind::Struct(parse_named_fields(body, &name))
    } else {
        ItemKind::Enum(parse_unit_variants(body, &name))
    };
    Item { name, kind }
}

fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2, // `#` + `[...]`
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    toks.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // `pub(crate)` and friends
                }
            }
            _ => break,
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde shim derive expected an identifier, found {other:?}"),
    }
}

fn parse_named_fields(body: TokenStream, item: &str) -> Vec<String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i);
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!(
                "serde shim derive supports only named fields; \
                 `{item}.{name}` is followed by {other:?}"
            ),
        }
        // Skip the type: everything up to a comma outside angle brackets.
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

fn parse_unit_variants(body: TokenStream, item: &str) -> Vec<String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i);
        match toks.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            other => panic!(
                "serde shim derive supports only unit enum variants; \
                 `{item}::{name}` is followed by {other:?}"
            ),
        }
        variants.push(name);
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation.
// ---------------------------------------------------------------------------

fn gen_struct_serialize(name: &str, fields: &[String]) -> String {
    let pushes: String = fields
        .iter()
        .map(|f| {
            format!(
                "fields.push((\"{f}\".to_string(), \
                 ::serde::to_value(&self.{f})\
                 .map_err(<S::Error as ::serde::ser::Error>::custom)?));\n"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn serialize<S: ::serde::Serializer>(&self, serializer: S)\n\
               -> ::core::result::Result<S::Ok, S::Error> {{\n\
             let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> =\n\
                 ::std::vec::Vec::new();\n\
             {pushes}\
             ::serde::Serializer::serialize_value(serializer, ::serde::Value::Map(fields))\n\
           }}\n\
         }}\n"
    )
}

fn gen_struct_deserialize(name: &str, fields: &[String]) -> String {
    let takes: String = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::take_field(&mut fields, \"{f}\")\
                 .map_err(<D::Error as ::serde::de::Error>::custom)?,\n"
            )
        })
        .collect();
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
           fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D)\n\
               -> ::core::result::Result<Self, D::Error> {{\n\
             match ::serde::Deserializer::take_value(deserializer)? {{\n\
               ::serde::Value::Map(mut fields) => {{\n\
                 let _ = &mut fields;\n\
                 ::core::result::Result::Ok({name} {{ {takes} }})\n\
               }}\n\
               other => ::core::result::Result::Err(\n\
                 <D::Error as ::serde::de::Error>::custom(::std::format!(\n\
                   \"expected map for struct {name}, found {{:?}}\", other))),\n\
             }}\n\
           }}\n\
         }}\n"
    )
}

fn gen_enum_serialize(name: &str, variants: &[String]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| format!("{name}::{v} => \"{v}\",\n"))
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn serialize<S: ::serde::Serializer>(&self, serializer: S)\n\
               -> ::core::result::Result<S::Ok, S::Error> {{\n\
             let variant = match self {{ {arms} }};\n\
             ::serde::Serializer::serialize_value(\n\
               serializer, ::serde::Value::Str(variant.to_string()))\n\
           }}\n\
         }}\n"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[String]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| format!("\"{v}\" => ::core::result::Result::Ok({name}::{v}),\n"))
        .collect();
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
           fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D)\n\
               -> ::core::result::Result<Self, D::Error> {{\n\
             match ::serde::Deserializer::take_value(deserializer)? {{\n\
               ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {arms}\
                 other => ::core::result::Result::Err(\n\
                   <D::Error as ::serde::de::Error>::custom(::std::format!(\n\
                     \"unknown variant `{{}}` for enum {name}\", other))),\n\
               }},\n\
               other => ::core::result::Result::Err(\n\
                 <D::Error as ::serde::de::Error>::custom(::std::format!(\n\
                   \"expected string for enum {name}, found {{:?}}\", other))),\n\
             }}\n\
           }}\n\
         }}\n"
    )
}
