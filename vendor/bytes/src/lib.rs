//! Offline shim for the `bytes` crate.
//!
//! Implements the subset of the API the snapshot codec in `tgopt::persist`
//! uses: an owned, consumable byte buffer (`Bytes` + `Buf`) and a growable
//! writer (`BytesMut` + `BufMut`). Little-endian integer/float accessors
//! match the real crate's semantics, including panicking on underflow
//! (callers bounds-check with `remaining()` first).

use std::ops::Deref;

/// Read side: a cursor over a byte payload.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Consumes and returns the next `N`-byte little-endian chunk.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Consumes one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Consumes a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Consumes a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Consumes a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

/// Write side: an append-only byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

/// An owned immutable byte buffer with an internal read cursor.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self { data: bytes.to_vec(), pos: 0 }
    }

    /// Total length including already-consumed bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True if nothing remains.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.remaining(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

/// A growable byte buffer for building payloads.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { data: Vec::with_capacity(cap) }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let mut w = BytesMut::new();
        w.put_slice(b"HDR!");
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(1 << 40);
        w.put_f32_le(1.5);
        let mut r = w.freeze();
        let mut hdr = [0u8; 4];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR!");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from_static(b"ab");
        b.get_u32_le();
    }
}
