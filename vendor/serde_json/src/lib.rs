//! Offline shim for `serde_json`.
//!
//! Serializes the serde shim's [`serde::Value`] tree to JSON text and
//! parses it back with a recursive-descent parser. Floats are written with
//! Rust's shortest-round-trip `Display`, so `f64` (and therefore `f32`,
//! which the serde shim widens exactly) survives a text round trip
//! bit-for-bit.

use serde::{DeserializeOwned, Serialize, Value};
use std::fmt;

/// Error for JSON encoding/decoding failures.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// Serializes `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let tree = serde::to_value(value).map_err(|e| Error::new(e.to_string()))?;
    let mut out = String::new();
    write_value(&mut out, &tree)?;
    Ok(out)
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let tree = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at offset {}", p.pos)));
    }
    serde::from_value(tree).map_err(|e| Error::new(e.to_string()))
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => {
            if !v.is_finite() {
                return Err(Error::new(format!("non-finite float {v} is not valid JSON")));
            }
            // Rust's Display prints the shortest decimal that parses back to
            // the same f64, which is exactly what we need for round trips —
            // but integral values (including -0.0) print without a float
            // marker, which would deserialize through the integer path and
            // drop the sign of -0.0. Force a `.0` suffix in that case.
            let text = v.to_string();
            let is_int_like = !text.contains(['.', 'e', 'E']);
            out.push_str(&text);
            if is_int_like {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item)?;
            }
            out.push(']');
        }
        Value::Map(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, v)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(fields));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at offset {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy the longest run without escapes or terminator in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape {:?} at offset {}",
                                other.map(|b| b as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid float `{text}`")))
        } else if let Some(rest) = text.strip_prefix('-') {
            // Integer-looking literals wider than i64 (e.g. a float printed
            // without an exponent) fall back to f64, as real serde_json does.
            rest.parse::<i64>()
                .map(|v| Value::I64(-v))
                .or_else(|_| text.parse::<f64>().map(Value::F64))
                .map_err(|_| Error::new(format!("invalid integer `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .or_else(|_| text.parse::<f64>().map(Value::F64))
                .map_err(|_| Error::new(format!("invalid integer `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let json = to_string(&(1usize, -2i64, 1.5f64, true)).unwrap();
        let back: (usize, i64, f64, bool) = from_str(&json).unwrap();
        assert_eq!(back, (1, -2, 1.5, true));
    }

    #[test]
    fn f32_survives_text_round_trip_exactly() {
        let values: Vec<f32> = vec![0.0, -0.0, 1.0, 0.1, 1e-30, 3.4e38, f32::MIN_POSITIVE];
        let json = to_string(&values).unwrap();
        let back: Vec<f32> = from_str(&json).unwrap();
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} mangled to {b}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nquote\" back\\slash \t unicode \u{0001}".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
