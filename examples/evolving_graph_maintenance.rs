//! Maintaining the TGOpt cache while the graph changes — the paper's
//! future-work scenario (§7), implemented here: pure edge *additions* are
//! reuse-safe under most-recent sampling, so the cache is carried across
//! graph growth; edge *deletions* change history and require invalidating
//! the affected nodes' cached embeddings.
//!
//! ```sh
//! cargo run --release --example evolving_graph_maintenance
//! ```

use tgopt_repro::datasets;
use tgopt_repro::graph::{Edge, TemporalGraph};
use tgopt_repro::tensor::Tensor;
use tgopt_repro::tgat::engine::GraphContext;
use tgopt_repro::tgat::{BaselineEngine, TgatConfig, TgatParams};
use tgopt_repro::tgopt::{OptConfig, TgoptEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = datasets::spec_by_name("snap-msg").ok_or("dataset snap-msg missing from catalog")?;
    let data = datasets::generate(&spec, 0.2, 3)?;
    let cfg = TgatConfig {
        dim: 24,
        edge_dim: data.dim(),
        time_dim: 24,
        n_layers: 2,
        n_heads: 2,
        n_neighbors: 8,
    };
    let params = TgatParams::init(cfg, 21)?;
    let node_features = Tensor::zeros(data.stream.num_nodes(), cfg.dim);

    // Phase 1: serve queries over the first 80% of the history.
    let edges = data.stream.edges();
    let split = edges.len() * 8 / 10;
    let mut graph = TemporalGraph::with_nodes(data.stream.num_nodes());
    for e in &edges[..split] {
        graph.insert(e);
    }
    let t1 = edges[split - 1].time + 1.0;
    let queries: Vec<u32> = (0..40).map(|i| edges[i * 7 % split].src).collect();
    let qts = vec![t1; queries.len()];

    let ctx = GraphContext { graph: &graph, node_features: &node_features, edge_features: &data.edge_features };
    let mut engine = TgoptEngine::new(&params, ctx, OptConfig::all());
    let _ = engine.embed_batch(&queries, &qts)?;
    let warm = engine.cache().len();
    println!("phase 1: warmed cache with {warm} embeddings over {split} edges");

    // Phase 2: the graph grows. Additions never change an existing target's
    // temporal subgraph (t_j < t screens them out), so the cache is carried
    // over unchanged via into_cache/with_cache.
    let (cache, counters) = engine.into_cache();
    for e in &edges[split..] {
        graph.insert(e);
    }
    let ctx = GraphContext { graph: &graph, node_features: &node_features, edge_features: &data.edge_features };
    let mut engine = TgoptEngine::with_cache(&params, ctx, OptConfig::all(), cache, counters);
    let before = engine.counters();
    let h_grown = engine.embed_batch(&queries, &qts)?;
    let delta = engine.counters().delta_since(&before);
    println!(
        "phase 2: after growth, re-query at the same (node, t): {:.0}% served from cache",
        100.0 * delta.hit_rate()
    );

    // Sanity: a cold baseline on the grown graph agrees exactly.
    let mut cold = BaselineEngine::new(&params, ctx);
    let h_cold = cold.embed_batch(&queries, &qts);
    println!(
        "         cached results match a cold baseline within {:.1e}",
        h_grown.max_abs_diff(&h_cold)
    );
    assert!(h_grown.max_abs_diff(&h_cold) < 1e-4);

    // Phase 3: an edge is deleted (retracted message). History changed, so
    // cached embeddings of both endpoints are invalidated before re-serving.
    let victim: Edge = edges[split / 2];
    let (cache, counters) = engine.into_cache();
    graph.delete_edge(victim.src, victim.dst, victim.eid);
    let ctx = GraphContext { graph: &graph, node_features: &node_features, edge_features: &data.edge_features };
    let mut engine = TgoptEngine::with_cache(&params, ctx, OptConfig::all(), cache, counters);
    let dropped = engine.invalidate_node(victim.src) + engine.invalidate_node(victim.dst);
    println!(
        "phase 3: deleted edge ({}, {}, t={}); invalidated {dropped} cached embeddings",
        victim.src, victim.dst, victim.time
    );

    let h_after = engine.embed_batch(&queries, &qts)?;
    let mut fresh = BaselineEngine::new(&params, ctx);
    let h_fresh = fresh.embed_batch(&queries, &qts);
    let diff = h_after.max_abs_diff(&h_fresh);
    println!("         post-delete embeddings match a fresh baseline within {diff:.1e}");
    assert!(diff < 1e-4, "invalidation must restore correctness");
    println!("\ncache maintained across growth and deletion without recomputing the world.");
    Ok(())
}
