//! Link prediction end to end: train a TGAT model on the chronological
//! prefix of a dynamic graph (negative sampling + BCE + Adam, the paper's
//! "standard training procedures"), evaluate AUC on the held-out suffix,
//! save the checkpoint, then serve predictions through the TGOpt engine.
//!
//! ```sh
//! cargo run --release --example link_prediction
//! ```

use tgopt_repro::datasets;
use tgopt_repro::graph::TemporalGraph;
use tgopt_repro::tensor::Tensor;
use tgopt_repro::tgat::engine::GraphContext;
use tgopt_repro::tgat::train::{train, TrainConfig};
use tgopt_repro::tgat::{predictor, TgatConfig, TgatParams};
use tgopt_repro::tgopt::{OptConfig, TgoptEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small slice of the synthetic MOOC graph: students acting on a small
    // set of course items — structured enough to learn from quickly.
    let spec = datasets::spec_by_name("jodie-mooc").ok_or("dataset jodie-mooc missing from catalog")?;
    let data = datasets::generate(&spec, 0.004, 1)?;
    println!("training on {} interactions / {} nodes", data.stream.len(), data.stream.num_nodes());

    let cfg = TgatConfig {
        dim: 16,
        edge_dim: data.dim(),
        time_dim: 16,
        n_layers: 2,
        n_heads: 2,
        n_neighbors: 5,
    };
    let mut params = TgatParams::init(cfg, 3)?;
    let node_features = Tensor::zeros(data.stream.num_nodes(), cfg.dim);

    let tc = TrainConfig { epochs: 3, batch_size: 100, lr: 3e-3, train_frac: 0.8, seed: 9, ..Default::default() };
    let report = train(&mut params, &data.stream, &node_features, &data.edge_features, &tc);
    for (i, loss) in report.epoch_losses.iter().enumerate() {
        println!("epoch {}: mean BCE loss {loss:.4}", i + 1);
    }
    println!("validation AUC: {:.3} (0.5 = chance)", report.val_auc);

    // Persist and reload the trained model, as a deployment would.
    let path = std::env::temp_dir().join("tgat-mooc.json");
    params.save(&path)?;
    let params = TgatParams::load(&path)?;
    println!("checkpoint round-tripped through {}", path.display());

    // Serve: score candidate links at the end of the stream with TGOpt.
    let graph = TemporalGraph::from_stream(&data.stream);
    let ctx = GraphContext {
        graph: &graph,
        node_features: &node_features,
        edge_features: &data.edge_features,
    };
    let mut engine = TgoptEngine::new(&params, ctx, OptConfig::all());
    // Warm the cache by replaying the most recent history — the state a
    // streaming deployment would already be in.
    for batch in tgopt_repro::graph::BatchIter::new(&data.stream, 100) {
        let (ns, ts) = batch.targets();
        let _ = engine.embed_batch(&ns, &ts)?;
    }

    let t_query = data.stream.max_time() + 1.0;
    let last = data.stream.edges().last().ok_or("empty interaction stream")?;
    let (user, item) = (last.src, last.dst);
    // Candidate items: the true last partner plus a few other items (item
    // ids follow user ids in the bipartite encoding).
    let first_item = data
        .stream
        .edges()
        .iter()
        .map(|e| e.dst)
        .min()
        .ok_or("empty interaction stream")?;
    let n_items = data.stream.num_nodes() as u32 - first_item; // lint: allow(lossy-cast, node counts are u32-sized by construction of the bipartite encoding)
    let candidates: Vec<u32> = (0..5)
        .map(|k| if k == 0 { item } else { first_item + (item - first_item + k * 7) % n_items })
        .collect();

    let mut ns = vec![user];
    ns.extend_from_slice(&candidates);
    let ts = vec![t_query; ns.len()];
    let h = engine.embed_batch(&ns, &ts)?;
    let user_h = Tensor::from_vec(1, cfg.dim, h.row(0).to_vec());
    println!("\nlink scores for user {user} at t={t_query}:");
    for (i, &cand) in candidates.iter().enumerate() {
        let cand_h = Tensor::from_vec(1, cfg.dim, h.row(i + 1).to_vec());
        let logit = predictor::score(&params.predictor, &user_h, &cand_h).get(0, 0);
        let tag = if cand == item { "  <- most recent true partner" } else { "" };
        println!("  node {cand:>5}: logit {logit:+.4}{tag}");
    }
    println!(
        "\nTGOpt served the query with {:.1}% cache reuse",
        100.0 * engine.counters().hit_rate()
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
