//! Quickstart: run TGAT inference with and without TGOpt on a synthetic
//! dynamic graph and verify the outputs agree while TGOpt runs faster.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::time::Instant;
use tgopt_repro::datasets;
use tgopt_repro::graph::{BatchIter, TemporalGraph};
use tgopt_repro::tensor::Tensor;
use tgopt_repro::tgat::engine::GraphContext;
use tgopt_repro::tgat::{BaselineEngine, TgatConfig, TgatParams};
use tgopt_repro::tgopt::{OptConfig, TgoptEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Get a dynamic graph. Here: a synthetic stand-in for the Wikipedia
    //    edit stream (see `tg_datasets` for the full catalog, or
    //    `datasets::load_csv` for your own data).
    let spec = datasets::spec_by_name("jodie-wiki").ok_or("dataset jodie-wiki missing from catalog")?;
    let data = datasets::generate(&spec, 0.02, 42)?;
    println!(
        "dataset: {} — {} interactions among {} nodes, {}-dim edge features",
        data.name,
        data.stream.len(),
        data.stream.num_nodes(),
        data.dim()
    );

    // 2. Build a TGAT model. Real deployments load trained weights
    //    (`TgatParams::load`); inference *runtime* is weight-independent,
    //    so the quickstart uses seeded random parameters.
    let cfg = TgatConfig {
        dim: 32,
        edge_dim: data.dim(),
        time_dim: 32,
        n_layers: 2,
        n_heads: 2,
        n_neighbors: 10,
    };
    let params = TgatParams::init(cfg, 42)?;
    println!(
        "model: {} layers, {} heads, {} parameters",
        cfg.n_layers,
        cfg.n_heads,
        params.num_parameters()
    );

    // 3. Replay the interaction stream in batches of 200 edges, computing
    //    temporal embeddings for both endpoints of every edge.
    let graph = TemporalGraph::from_stream(&data.stream);
    let node_features = Tensor::zeros(graph.num_nodes(), cfg.dim);
    let ctx = GraphContext {
        graph: &graph,
        node_features: &node_features,
        edge_features: &data.edge_features,
    };

    let mut baseline = BaselineEngine::new(&params, ctx);
    let start = Instant::now();
    let mut base_sum = 0.0f64;
    for batch in BatchIter::new(&data.stream, 200) {
        let (ns, ts) = batch.targets();
        let h = baseline.embed_batch(&ns, &ts);
        base_sum += h.as_slice().iter().map(|&v| v as f64).sum::<f64>();
    }
    let base_s = start.elapsed().as_secs_f64();
    println!("{:<14} {base_s:>7.2}s   (checksum {base_sum:+.4e})", "baseline TGAT");

    let mut optimized = TgoptEngine::new(&params, ctx, OptConfig::all());
    let start = Instant::now();
    let mut opt_sum = 0.0f64;
    for batch in BatchIter::new(&data.stream, 200) {
        let (ns, ts) = batch.targets();
        let h = optimized.embed_batch(&ns, &ts)?;
        opt_sum += h.as_slice().iter().map(|&v| v as f64).sum::<f64>();
    }
    let opt_s = start.elapsed().as_secs_f64();
    println!("{:<14} {opt_s:>7.2}s   (checksum {opt_sum:+.4e})", "TGOpt");

    // 4. Same results, less time.
    let drift = (base_sum - opt_sum).abs() / base_sum.abs().max(1.0);
    println!(
        "\nspeedup: {:.2}x    output drift: {:.2e} (identical within f32 tolerance)",
        base_s / opt_s,
        drift
    );
    println!(
        "cache: {:.1}% hit rate, {} embeddings ({} KiB); dedup removed {} duplicate targets",
        100.0 * optimized.counters().hit_rate(),
        optimized.cache().len(),
        optimized.cache().bytes_used() / 1024,
        optimized.counters().dedup_removed,
    );
    assert!(drift < 1e-3, "engines must agree");
    Ok(())
}
