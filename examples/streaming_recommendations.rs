//! Streaming recommendation serving — the workload the paper's introduction
//! motivates (JODIE-style user/item interaction graphs).
//!
//! An interaction stream is consumed in batches; after each batch the model
//! embeds the active users and ranks items for them. TGOpt's cache makes
//! this cheap: user/item neighborhoods barely change between consecutive
//! interactions, so most embeddings are reused. The example reports the hit
//! rate climbing as the stream progresses (the Figure 7 effect, live).
//!
//! ```sh
//! cargo run --release --example streaming_recommendations
//! ```

use tgopt_repro::datasets::{self, GraphKind};
use tgopt_repro::graph::{BatchIter, TemporalGraph};
use tgopt_repro::tensor::Tensor;
use tgopt_repro::tgat::engine::GraphContext;
use tgopt_repro::tgat::{predictor, TgatConfig, TgatParams};
use tgopt_repro::tgopt::{OptConfig, TgoptEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = datasets::spec_by_name("jodie-lastfm").ok_or("dataset jodie-lastfm missing from catalog")?;
    let data = datasets::generate(&spec, 0.01, 5)?;
    let GraphKind::Bipartite { users, items } = spec.kind else {
        return Err("jodie-lastfm should be bipartite".into());
    };
    println!(
        "stream: {} listens, {users} users x {items} artists\n",
        data.stream.len()
    );

    let cfg = TgatConfig {
        dim: 32,
        edge_dim: data.dim(),
        time_dim: 32,
        n_layers: 2,
        n_heads: 2,
        n_neighbors: 10,
    };
    let params = TgatParams::init(cfg, 11)?;
    let graph = TemporalGraph::from_stream(&data.stream);
    // Size features/counters to the full id space: a scaled stream may not
    // have touched the highest user/item ids yet.
    let id_space = (users + items).max(graph.num_nodes());
    let node_features = Tensor::zeros(id_space, cfg.dim);
    let ctx = GraphContext {
        graph: &graph,
        node_features: &node_features,
        edge_features: &data.edge_features,
    };
    let mut engine = TgoptEngine::new(&params, ctx, OptConfig::all());

    // Popular artists to rank for each user (a real system would shortlist
    // via retrieval; popularity works for the demo).
    let mut counts = vec![0u32; id_space];
    for e in data.stream.edges() {
        counts[e.dst as usize] += 1;
    }
    let mut popular: Vec<u32> = (users as u32..(users + items) as u32).collect(); // lint: allow(lossy-cast, user/item counts are u32-sized node ids)
    popular.sort_by_key(|&i| std::cmp::Reverse(counts[i as usize]));
    popular.truncate(8);

    let mut prev = engine.counters();
    let total_batches = BatchIter::new(&data.stream, 200).num_batches();
    for batch in BatchIter::new(&data.stream, 200) {
        let (ns, ts) = batch.targets();
        let _ = engine.embed_batch(&ns, &ts)?;
        let now = engine.counters();
        let delta = now.delta_since(&prev);
        prev = now;
        if batch.index % 5 == 0 || batch.index + 1 == total_batches {
            println!(
                "batch {:>3}/{total_batches}: cache hit rate {:>5.1}% ({} reused / {} recomputed)",
                batch.index + 1,
                100.0 * delta.hit_rate(),
                delta.cache_hits,
                delta.recomputed
            );
        }
    }

    // Recommend for the most recently active user.
    let last = data.stream.edges().last().ok_or("empty interaction stream")?;
    let t = data.stream.max_time() + 1.0;
    let mut ns = vec![last.src];
    ns.extend_from_slice(&popular);
    let h = engine.embed_batch(&ns, &vec![t; ns.len()])?;
    let user_h = Tensor::from_vec(1, cfg.dim, h.row(0).to_vec());
    let mut scored: Vec<(u32, f32)> = popular
        .iter()
        .enumerate()
        .map(|(i, &artist)| {
            let a_h = Tensor::from_vec(1, cfg.dim, h.row(i + 1).to_vec());
            (artist, predictor::score(&params.predictor, &user_h, &a_h).get(0, 0))
        })
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop artists for user {} at t={t:.0}:", last.src);
    for (rank, (artist, logit)) in scored.iter().take(5).enumerate() {
        println!("  #{:<2} artist {:>5}  score {:+.4}", rank + 1, artist, logit);
    }
    println!(
        "\nlifetime cache hit rate {:.1}%, {} cached embeddings ({} KiB)",
        100.0 * engine.counters().hit_rate(),
        engine.cache().len(),
        engine.cache().bytes_used() / 1024
    );
    Ok(())
}
